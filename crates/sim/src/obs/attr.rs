//! Tail attribution: per-fiber phase accounting, always-on log-bucketed
//! phase histograms, and worst-request exemplars.
//!
//! Every simulated nanosecond of a request's life is charged to exactly
//! one [`Phase`]. The accountant ([`Attribution`]) is driven from the
//! same typed [`Event`] stream the counters are
//! ([`Observer::emit`](super::Observer::emit) feeds both), so the
//! attribution can never disagree with the event log: a phase boundary
//! *is* an event boundary. Per-request breakdowns aggregate into
//! fixed-size power-of-two [`PhaseHistogram`]s (per phase and
//! end-to-end) and the worst requests are pinned whole as
//! [`Exemplar`]s, phase breakdown included. The phase vocabulary and
//! the bucket scheme are documented in `docs/TRACING.md`.
//!
//! Exactness contract: an exemplar's six phase durations sum to its
//! end-to-end latency, always. [`Phase::Queued`] is the residual —
//! whatever the event stream did not explicitly charge to running,
//! switching, or a fault tier was time the request spent waiting in a
//! queue — so the identity holds by construction.

use super::event::Event;

/// Sentinel: no fiber currently on this worker.
const NO_FIBER: u32 = u32::MAX;

/// The typed phases a request's wall-clock time decomposes into.
///
/// Priority when several apply at once (a fiber on a worker whose
/// mechanism is unhealthy): `RetryStall` > `DegradedSignal` >
/// `BrownoutHeld` > `Running`. Off-worker time is `PreemptSwitch`
/// inside an open switch window and `Queued` otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Waiting: in the dispatch queue, parked between slices, or any
    /// other instant the event stream charged nowhere else (the
    /// residual that makes the breakdown sum exact).
    Queued = 0,
    /// On a worker core making progress, mechanism healthy.
    Running = 1,
    /// Inside a context-switch window: from [`Event::SwitchBegin`] to
    /// the matching [`Event::TaskStart`] (dispatch pick + fcontext
    /// switch, first launch included).
    PreemptSwitch = 2,
    /// On a worker whose current preemption is known lost: from the
    /// first [`Event::PreemptRetry`] of the run until the send lands
    /// or the run ends. The slice overrun a lost preemption causes is
    /// charged here, not to `Running`.
    RetryStall = 3,
    /// On a worker degraded to the kernel signal path (between
    /// [`Event::MechDegraded`] and [`Event::MechRecovered`]).
    DegradedSignal = 4,
    /// On a worker in the brownout tier (between
    /// [`Event::MechBrownout`] and the next landed preemption or
    /// degradation on that worker).
    BrownoutHeld = 5,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 6;

    /// Every phase, in breakdown order (the order `phase_ns` arrays and
    /// every export use).
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Queued,
        Phase::Running,
        Phase::PreemptSwitch,
        Phase::RetryStall,
        Phase::DegradedSignal,
        Phase::BrownoutHeld,
    ];

    /// Stable snake_case name (the key used in exports and docs).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::PreemptSwitch => "preempt_switch",
            Phase::RetryStall => "retry_stall",
            Phase::DegradedSignal => "degraded_signal",
            Phase::BrownoutHeld => "brownout_held",
        }
    }
}

/// Number of buckets in a [`PhaseHistogram`]: power-of-two buckets
/// cover the full `u64` nanosecond range.
pub const PHASE_HIST_BUCKETS: usize = 64;

/// A fixed-size log-bucketed histogram of nanosecond durations.
///
/// Bucket 0 holds exact zeros; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`; the last bucket is open-ended. No allocation,
/// ever — recording is a shift and two adds — and [`merge`] is a
/// plain element-wise sum, so merged histograms are deterministic in
/// any merge order.
///
/// [`merge`]: PhaseHistogram::merge
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseHistogram {
    counts: [u64; PHASE_HIST_BUCKETS],
    count: u64,
    sum_ns: u64,
}

impl Default for PhaseHistogram {
    fn default() -> Self {
        PhaseHistogram { counts: [0; PHASE_HIST_BUCKETS], count: 0, sum_ns: 0 }
    }
}

impl PhaseHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `ns`.
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (PHASE_HIST_BUCKETS - ns.leading_zeros() as usize).min(PHASE_HIST_BUCKETS - 1)
        }
    }

    /// The inclusive `[lo, hi]` nanosecond range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            _ if i >= PHASE_HIST_BUCKETS - 1 => (1 << (PHASE_HIST_BUCKETS - 2), u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Records one duration without maintaining the `count` field —
    /// the completion hot path defers it, and
    /// [`PhaseStats::seal_zeros`] re-derives every count from the
    /// bucket sums before any read. Cuts one read-modify-write per
    /// record, which is material at one call per phase per completion.
    #[inline(always)]
    fn record_fast(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Records an exact zero: bucket 0 directly, no shift, no sum add.
    /// The completion-heavy hot path calls this for the (typically
    /// four) phases a healthy request never enters.
    #[inline]
    fn record_zero(&mut self) {
        self.counts[0] += 1;
        self.count += 1;
    }

    /// Element-wise sum: afterwards `self` is exactly the histogram of
    /// both sample sets. Associative and commutative, so any merge
    /// tree over the same runs yields the same bytes.
    pub fn merge(&mut self, other: &PhaseHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded durations (saturating at `u64::MAX`
    /// nanoseconds, roughly 584 years of accumulated phase time).
    pub fn sum_ns(&self) -> u128 {
        u128::from(self.sum_ns)
    }

    /// Exact mean (integer division), or 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_ns / self.count
        }
    }

    /// Upper bound of the bucket containing the nearest-rank `q`
    /// quantile (`0 < q <= 1`), or 0 when empty. Quantized to the
    /// bucket boundary — within 2x of the true value by construction.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(i).1;
            }
        }
        u64::MAX
    }

    /// Convenience: bucketized p99.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Convenience: bucketized p99.9.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// `(bucket_lo, bucket_hi, count)` for every non-empty bucket, in
    /// increasing value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let (lo, hi) = Self::bucket_bounds(i);
            (lo, hi, c)
        })
    }
}

/// How many worst-request exemplars a run pins.
pub const EXEMPLAR_SLOTS: usize = 4;

/// One pinned worst request: identity, end-to-end latency, and the
/// full phase breakdown. The breakdown sums exactly to `latency_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Exemplar {
    /// Context-pool index of the request's fiber.
    pub fiber: u32,
    /// Worker the request finished on.
    pub worker: u16,
    /// Simulation instant the request completed, nanoseconds.
    pub finished_at_ns: u64,
    /// End-to-end latency (arrival to completion).
    pub latency_ns: u64,
    /// Nanoseconds charged to each phase, indexed by [`Phase::ALL`]
    /// order; sums to `latency_ns`.
    pub phase_ns: [u64; Phase::COUNT],
}

impl Exemplar {
    /// Nanoseconds this request spent in `p`.
    pub fn phase(&self, p: Phase) -> u64 {
        self.phase_ns[p as usize]
    }

    /// Sum of the phase breakdown (equals `latency_ns` for exemplars
    /// produced by [`Attribution`]).
    pub fn phase_sum(&self) -> u64 {
        self.phase_ns.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }
}

/// The aggregated attribution a run reports: per-phase and end-to-end
/// histograms plus the pinned worst-request exemplars.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Per-request nanoseconds spent in each phase, one histogram per
    /// phase in [`Phase::ALL`] order (every completion records into
    /// every phase histogram, zeros included, so counts line up).
    pub per_phase: [PhaseHistogram; Phase::COUNT],
    /// End-to-end request latency.
    pub end_to_end: PhaseHistogram,
    slots: [Exemplar; EXEMPLAR_SLOTS],
    filled: u8,
    /// Cached minimum `latency_ns` across a full slot pool — the
    /// admission floor. Lets [`consider`](Self::consider) reject the
    /// typical completion with one compare instead of scanning the
    /// pool. 0 while the pool is filling (everything admits).
    floor: u64,
}

impl PhaseStats {
    /// Records one completed request's breakdown and considers it for
    /// an exemplar slot (kept iff among the worst seen so far;
    /// strictly-greater replaces, so ties keep the earliest).
    pub fn record(&mut self, ex: Exemplar) {
        for p in Phase::ALL {
            let ns = ex.phase(p);
            let h = &mut self.per_phase[p as usize];
            if ns == 0 {
                h.record_zero();
            } else {
                h.record(ns);
            }
        }
        self.end_to_end.record(ex.latency_ns);
        self.consider(ex);
    }

    /// Records one completion, deferring zero-valued phases: only the
    /// phases the request actually entered touch a histogram here; the
    /// implicit zeros are owed until the next [`seal_zeros`] call
    /// restores the invariant that every phase histogram's count
    /// equals the end-to-end count. The accountant's hot path uses
    /// this (with a seal at read time); external callers use
    /// [`record`](Self::record), which is always sealed.
    ///
    /// [`seal_zeros`]: Self::seal_zeros
    fn record_hot(&mut self, ex: Exemplar) {
        for p in Phase::ALL {
            let ns = ex.phase_ns[p as usize];
            if ns != 0 {
                self.per_phase[p as usize].record_fast(ns);
            }
        }
        self.end_to_end.record_fast(ex.latency_ns);
        self.consider(ex);
    }

    /// The clean-slice completion path: the breakdown is known to be
    /// exactly `queued_ns` + `label_ns` (in `label`) + `switch_ns`, so
    /// the three scalars go straight into their histograms — no
    /// breakdown array, and the 80-byte [`Exemplar`] is only built
    /// when the completion actually beats the exemplar pool's
    /// admission floor. Defers zero phases and counts exactly like
    /// [`record_hot`](Self::record_hot).
    #[allow(clippy::too_many_arguments)]
    fn record_parts(
        &mut self,
        label: Phase,
        label_ns: u64,
        switch_ns: u64,
        queued_ns: u64,
        latency_ns: u64,
        fiber: u32,
        worker: u16,
        finished_at_ns: u64,
    ) {
        if queued_ns != 0 {
            self.per_phase[Phase::Queued as usize].record_fast(queued_ns);
        }
        if label_ns != 0 {
            self.per_phase[label as usize].record_fast(label_ns);
        }
        if switch_ns != 0 {
            self.per_phase[Phase::PreemptSwitch as usize].record_fast(switch_ns);
        }
        self.end_to_end.record_fast(latency_ns);
        if (self.filled as usize) < EXEMPLAR_SLOTS || latency_ns > self.floor {
            let mut phase_ns = [0u64; Phase::COUNT];
            phase_ns[Phase::Queued as usize] = queued_ns;
            phase_ns[label as usize] = label_ns;
            phase_ns[Phase::PreemptSwitch as usize] =
                phase_ns[Phase::PreemptSwitch as usize].saturating_add(switch_ns);
            self.consider(Exemplar { fiber, worker, finished_at_ns, latency_ns, phase_ns });
        }
    }

    /// Folds the zeros [`record_hot`](Self::record_hot) deferred into
    /// bucket 0, in O(phases). Idempotent; a no-op after plain
    /// [`record`](Self::record) calls.
    fn seal_zeros(&mut self) {
        let total: u64 = self.end_to_end.counts.iter().sum();
        self.end_to_end.count = total;
        for h in self.per_phase.iter_mut() {
            let cnt: u64 = h.counts.iter().sum();
            h.counts[0] += total.saturating_sub(cnt);
            h.count = total;
        }
    }

    /// The pinned exemplars, worst first (latency descending, ties by
    /// earlier finish then lower fiber id — a total order, so the
    /// listing is deterministic).
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let mut v: Vec<Exemplar> = self.slots[..self.filled as usize].to_vec();
        v.sort_by(|a, b| {
            b.latency_ns
                .cmp(&a.latency_ns)
                .then(a.finished_at_ns.cmp(&b.finished_at_ns))
                .then(a.fiber.cmp(&b.fiber))
        });
        v
    }

    /// The single worst request, if any completed.
    pub fn worst(&self) -> Option<Exemplar> {
        self.exemplars().into_iter().next()
    }

    /// Number of completions recorded.
    pub fn completions(&self) -> u64 {
        self.end_to_end.count()
    }

    /// Merges another run's stats: histograms sum element-wise and the
    /// exemplar pool keeps the overall worst. Deterministic for a
    /// fixed merge order.
    pub fn merge(&mut self, other: &PhaseStats) {
        for (a, b) in self.per_phase.iter_mut().zip(other.per_phase.iter()) {
            a.merge(b);
        }
        self.end_to_end.merge(&other.end_to_end);
        for ex in &other.slots[..other.filled as usize] {
            self.consider(*ex);
        }
    }

    fn consider(&mut self, ex: Exemplar) {
        if (self.filled as usize) < EXEMPLAR_SLOTS {
            self.slots[self.filled as usize] = ex;
            self.filled += 1;
            if (self.filled as usize) == EXEMPLAR_SLOTS {
                self.refloor();
            }
            return;
        }
        if ex.latency_ns <= self.floor {
            return;
        }
        let (mut min_i, mut min_v) = (0usize, u64::MAX);
        for (i, s) in self.slots.iter().enumerate() {
            if s.latency_ns < min_v {
                min_i = i;
                min_v = s.latency_ns;
            }
        }
        self.slots[min_i] = ex;
        self.refloor();
    }

    /// Recomputes the admission floor from a full slot pool.
    fn refloor(&mut self) {
        self.floor = self.slots.iter().map(|s| s.latency_ns).min().unwrap_or(0);
    }
}

/// Per-worker accountant state, packed into 16 bytes so all workers'
/// live state shares one cache line (the accountant's hottest data:
/// every `task_start`/`preempt`/`task_finish` touches it, and the
/// surrounding simulation streams a working set large enough to evict
/// anything it doesn't keep tiny).
///
/// `packed` layout: bits 0..32 the on-core fiber (`NO_FIBER` when
/// idle), bits 32..35 the mechanism-health flags, bit 35 the
/// ledger-dirty marker ([`F_DIRTY`]: this fiber has charges in its
/// [`Ledger`], so its finish must merge them), bits 36.. the
/// switch-window duration `task_start` carried in, awaiting its
/// segment close (saturated at [`SWITCH_MAX`]; any excess shows up as
/// `Queued` residual). `mark_ns` is the open segment's start.
#[derive(Debug, Clone, Copy)]
struct WorkerAttr {
    packed: u64,
    mark_ns: u64,
}

/// Health-flag bit: a preemption retry is in flight on this worker.
const F_STALLED: u64 = 1 << 32;
/// Health-flag bit: the worker is degraded to the signal path.
const F_DEGRADED: u64 = 1 << 33;
/// Health-flag bit: the worker is in the brownout tier.
const F_BROWNOUT: u64 = 1 << 34;
/// All health-flag bits.
const F_HEALTH: u64 = F_STALLED | F_DEGRADED | F_BROWNOUT;
/// The on-core fiber has charges in its [`Ledger`] (it was preempted
/// before, or a health-flag change split its current slice), so its
/// finish must read and reset the ledger. Never-preempted
/// never-relabeled requests — the common case — skip the ledger
/// entirely: their whole breakdown lives in the open segment.
const F_DIRTY: u64 = 1 << 35;
/// Bit offset of the pending switch-window duration.
const SWITCH_SHIFT: u32 = 36;
/// Pending switch durations saturate here (~268 ms — far beyond any
/// plausible dispatch+switch window; the remainder is `Queued`).
const SWITCH_MAX: u64 = (1 << (64 - SWITCH_SHIFT)) - 1;

/// Phase label for each health-flag combination (index = bits 32..35
/// of `packed`), encoding the priority stalled > degraded > brownout.
const LABEL_LUT: [Phase; 8] = [
    Phase::Running,        // 000
    Phase::RetryStall,     // stalled
    Phase::DegradedSignal, // degraded
    Phase::RetryStall,     // stalled | degraded
    Phase::BrownoutHeld,   // brownout
    Phase::RetryStall,     // stalled | brownout
    Phase::DegradedSignal, // degraded | brownout
    Phase::RetryStall,     // all three
];

impl WorkerAttr {
    /// The on-core fiber, or `NO_FIBER`.
    #[inline]
    fn fiber(self) -> u32 {
        self.packed as u32
    }

    /// The phase label the current health flags select for on-core
    /// time (priority: stalled > degraded > brownout > running).
    #[inline]
    fn label(self) -> Phase {
        LABEL_LUT[((self.packed >> 32) & 7) as usize]
    }
}

impl Default for WorkerAttr {
    fn default() -> Self {
        WorkerAttr { packed: u64::from(NO_FIBER), mark_ns: 0 }
    }
}

/// Per-fiber accountant state: the five explicitly tracked phase
/// accumulators (`Queued` is the residual, computed at finish).
/// Line-aligned so one fiber's charges never straddle two lines.
#[derive(Debug, Clone, Copy)]
#[repr(align(64))]
struct Ledger {
    tracked_ns: [u64; Phase::COUNT],
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger { tracked_ns: [0; Phase::COUNT] }
    }
}

/// The live phase accountant: a zero-alloc state machine over the
/// typed event stream.
///
/// State is two flat arrays — one per-fiber phase ledger (context-pool
/// index) and one packed per-worker record — grown once to the pool
/// and worker-count high-water marks and then reused, so the
/// steady-state hot path allocates nothing. Completion records skip
/// the phases a request never entered; the implicit zeros fold into
/// the histograms in O(phases) when the stats are read. Robust to arbitrary event streams (all arithmetic
/// saturates; unknown fibers/workers grow the arrays; orphaned
/// segments are defensively closed), and in-flight requests at end of
/// run are simply censored: only completions reach [`PhaseStats`].
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    enabled: bool,
    workers: Vec<WorkerAttr>,
    ledgers: Vec<Ledger>,
    stats: PhaseStats,
}

impl Attribution {
    /// An enabled accountant (the always-on default).
    pub fn new() -> Self {
        Attribution { enabled: true, ..Default::default() }
    }

    /// Turns the accountant on or off.
    ///
    /// Attribution ships always-on; the off switch exists so
    /// `lp-bench` can measure the accountant's healthy-path overhead
    /// (the `attribution_overhead` section, gated <2% in CI) against
    /// an otherwise byte-identical run. Turning it off must not change
    /// any other observable output.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether the accountant is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The aggregated stats so far (seals deferred zero records first).
    pub fn stats(&mut self) -> &PhaseStats {
        self.flush();
        &self.stats
    }

    /// Takes the aggregated stats, leaving empty ones behind (live
    /// per-fiber/per-worker state is reset too).
    pub fn take_stats(&mut self) -> PhaseStats {
        self.flush();
        self.workers.clear();
        self.ledgers.clear();
        std::mem::take(&mut self.stats)
    }

    /// Restores the phase-count invariant the hot path defers.
    fn flush(&mut self) {
        self.stats.seal_zeros();
    }

    #[inline]
    fn worker_mut(&mut self, w: u16) -> &mut WorkerAttr {
        let i = w as usize;
        if i >= self.workers.len() {
            self.workers.resize(i + 1, WorkerAttr::default());
        }
        &mut self.workers[i]
    }

    fn ledger_mut(&mut self, fiber: u32) -> &mut Ledger {
        let i = fiber as usize;
        if i >= self.ledgers.len() {
            self.ledgers.resize(i + 1, Ledger::default());
        }
        &mut self.ledgers[i]
    }

    /// Closes the open segment on `worker` at `at_ns`, charging it to
    /// the phase the health flags select (plus any pending
    /// switch-window duration), and starts the next segment.
    fn close_segment(&mut self, w: u16, at_ns: u64) {
        let i = w as usize;
        if i >= self.workers.len() {
            return;
        }
        let wa = self.workers[i];
        if wa.fiber() == NO_FIBER {
            return;
        }
        let phase = wa.label();
        let dur = at_ns.saturating_sub(wa.mark_ns);
        let sd = wa.packed >> SWITCH_SHIFT;
        let l = self.ledger_mut(wa.fiber());
        let slot = &mut l.tracked_ns[phase as usize];
        *slot = slot.saturating_add(dur);
        if sd != 0 {
            let s = &mut l.tracked_ns[Phase::PreemptSwitch as usize];
            *s = s.saturating_add(sd);
        }
        let wa = &mut self.workers[i];
        wa.packed = (wa.packed & !(SWITCH_MAX << SWITCH_SHIFT)) | F_DIRTY;
        wa.mark_ns = at_ns;
    }

    /// Applies a health-flag change on `worker`: closes the open
    /// segment only when the change would alter the phase label
    /// (splitting a segment at an identical label charges the same
    /// totals at strictly more cost — on the healthy path every
    /// `preempt_landed` takes the single-compare no-op exit).
    #[inline]
    fn set_flags(&mut self, w: u16, at_ns: u64, set: u64, clear: u64) {
        let wa = self.worker_mut(w);
        let cur = wa.packed;
        let next = (cur | set) & !clear;
        if next == cur {
            return;
        }
        let relabeled = LABEL_LUT[((next >> 32) & 7) as usize]
            != LABEL_LUT[((cur >> 32) & 7) as usize];
        if relabeled && cur as u32 != NO_FIBER {
            self.close_segment(w, at_ns);
        }
        let wa = self.worker_mut(w);
        wa.packed = (wa.packed & !F_HEALTH) | (next & F_HEALTH);
    }

    /// Advances the accountant over one emitted event. Called by
    /// [`Observer::emit`](super::Observer::emit) for every event —
    /// the same call that bumps the counters — so attribution, the
    /// counters, and the event log share one source of truth.
    #[inline(always)]
    pub fn observe(&mut self, at_ns: u64, ev: &Event) {
        if !self.enabled {
            return;
        }
        match *ev {
            Event::TaskStart { worker, fiber, resumed, switch_ns } => {
                if self.worker_mut(worker).fiber() != NO_FIBER {
                    // Hostile stream: start over an open segment.
                    self.close_segment(worker, at_ns);
                }
                let wa = self.worker_mut(worker);
                // A fresh start clears any stall the previous occupant
                // left; worker-level degraded/brownout tiers persist. A
                // resumed fiber already has ledger charges from its
                // preempted slices, so it starts dirty.
                wa.packed = u64::from(fiber)
                    | (wa.packed & (F_DEGRADED | F_BROWNOUT))
                    | if resumed { F_DIRTY } else { 0 }
                    | (u64::from(switch_ns) << SWITCH_SHIFT);
                wa.mark_ns = at_ns;
            }
            Event::Preempt { worker, .. } => {
                self.close_segment(worker, at_ns);
                let wa = self.worker_mut(worker);
                wa.packed = (wa.packed & (F_DEGRADED | F_BROWNOUT)) | u64::from(NO_FIBER);
            }
            Event::TaskFinish { worker, fiber, latency_ns } => {
                let wa = *self.worker_mut(worker);
                if wa.fiber() == fiber && wa.packed & F_DIRTY == 0 {
                    // Common case: the request ran in one clean slice —
                    // never preempted, never relabeled. Its whole
                    // breakdown is the open segment plus the switch
                    // window; the ledger was never touched and no
                    // breakdown array is needed.
                    let label_ns = at_ns.saturating_sub(wa.mark_ns);
                    let switch_ns = wa.packed >> SWITCH_SHIFT;
                    let queued_ns =
                        latency_ns.saturating_sub(label_ns.saturating_add(switch_ns));
                    {
                        let wa = self.worker_mut(worker);
                        wa.packed =
                            (wa.packed & (F_DEGRADED | F_BROWNOUT)) | u64::from(NO_FIBER);
                    }
                    self.stats.record_parts(
                        wa.label(),
                        label_ns,
                        switch_ns,
                        queued_ns,
                        latency_ns,
                        fiber,
                        worker,
                        at_ns,
                    );
                } else {
                    self.close_segment(worker, at_ns);
                    let l = self.ledger_mut(fiber);
                    let mut phase_ns = l.tracked_ns;
                    *l = Ledger::default();
                    {
                        let wa = self.worker_mut(worker);
                        wa.packed =
                            (wa.packed & (F_DEGRADED | F_BROWNOUT)) | u64::from(NO_FIBER);
                    }
                    let tracked = phase_ns.iter().fold(0u64, |a, &b| a.saturating_add(b));
                    phase_ns[Phase::Queued as usize] = latency_ns.saturating_sub(tracked);
                    self.stats.record_hot(Exemplar {
                        fiber,
                        worker,
                        finished_at_ns: at_ns,
                        latency_ns,
                        phase_ns,
                    });
                }
            }
            Event::PreemptRetry { worker, .. } => {
                self.set_flags(worker, at_ns, F_STALLED, 0);
            }
            Event::PreemptLanded { worker, .. } => {
                self.set_flags(worker, at_ns, 0, F_STALLED | F_BROWNOUT);
            }
            Event::MechDegraded { worker, .. } => {
                self.set_flags(worker, at_ns, F_DEGRADED, F_BROWNOUT);
            }
            Event::MechRecovered { worker } => {
                self.set_flags(worker, at_ns, 0, F_DEGRADED);
            }
            Event::MechBrownout { worker, .. } => {
                self.set_flags(worker, at_ns, F_BROWNOUT, 0);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(w: u16, f: u32) -> Event {
        Event::TaskStart { worker: w, fiber: f, resumed: false, switch_ns: 0 }
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        assert_eq!(PhaseHistogram::bucket_index(0), 0);
        assert_eq!(PhaseHistogram::bucket_index(1), 1);
        assert_eq!(PhaseHistogram::bucket_index(2), 2);
        assert_eq!(PhaseHistogram::bucket_index(3), 2);
        assert_eq!(PhaseHistogram::bucket_index(4), 3);
        assert_eq!(PhaseHistogram::bucket_index(u64::MAX), PHASE_HIST_BUCKETS - 1);
        for i in 0..PHASE_HIST_BUCKETS {
            let (lo, hi) = PhaseHistogram::bucket_bounds(i);
            assert!(lo <= hi, "bucket {i}");
            if lo > 0 {
                assert_eq!(PhaseHistogram::bucket_index(lo), i);
            }
            if hi < u64::MAX {
                assert_eq!(PhaseHistogram::bucket_index(hi), i);
            }
        }
    }

    #[test]
    fn histogram_record_merge_quantile() {
        let mut a = PhaseHistogram::new();
        for _ in 0..99 {
            a.record(1_000);
        }
        let mut b = PhaseHistogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.sum_ns(), 99 * 1_000 + 1_000_000);
        // p99 lands in the 1µs bucket, p99.9+ in the 1ms tail bucket.
        assert!(a.p99_ns() < 2_048, "{}", a.p99_ns());
        assert!(a.p999_ns() >= 1_000_000, "{}", a.p999_ns());
        assert_eq!(a.quantile_ns(1.0), a.p999_ns());
        // Merge is element-wise: merging in the other order gives the
        // same bytes.
        let mut c = PhaseHistogram::new();
        c.record(1_000_000);
        let mut d = PhaseHistogram::new();
        for _ in 0..99 {
            d.record(1_000);
        }
        c.merge(&d);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = PhaseHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn simple_run_splits_queued_and_running() {
        let mut a = Attribution::new();
        // Fiber 7 arrives at t=0 (implicit), switches in 100ns, runs
        // 400ns on worker 2, finishes with 1000ns end-to-end latency.
        a.observe(500, &Event::SwitchBegin { worker: 2, fiber: 7, resumed: false });
        a.observe(600, &Event::TaskStart { worker: 2, fiber: 7, resumed: false, switch_ns: 100 });
        a.observe(1_000, &Event::TaskFinish { worker: 2, fiber: 7, latency_ns: 1_000 });
        let ex = a.stats().worst().expect("one completion");
        assert_eq!(ex.fiber, 7);
        assert_eq!(ex.worker, 2);
        assert_eq!(ex.latency_ns, 1_000);
        assert_eq!(ex.phase(Phase::Running), 400);
        assert_eq!(ex.phase(Phase::PreemptSwitch), 100);
        assert_eq!(ex.phase(Phase::Queued), 500);
        assert_eq!(ex.phase_sum(), ex.latency_ns);
    }

    #[test]
    fn retry_stall_relabels_the_overrun() {
        let mut a = Attribution::new();
        a.observe(0, &start(0, 1));
        // Quantum should have ended at 1000ns; the watchdog notices the
        // lost preemption at 1500 and the re-send lands at 2000.
        a.observe(
            1_500,
            &Event::PreemptRetry { worker: 0, seq: 1, attempt: 1, delay_ns: 500 },
        );
        a.observe(2_000, &Event::PreemptLanded { worker: 0, seq: 1, uintr: true });
        a.observe(2_000, &Event::TaskFinish { worker: 0, fiber: 1, latency_ns: 2_000 });
        let ex = a.stats().worst().unwrap();
        assert_eq!(ex.phase(Phase::Running), 1_500);
        assert_eq!(ex.phase(Phase::RetryStall), 500);
        assert_eq!(ex.phase(Phase::Queued), 0);
        assert_eq!(ex.phase_sum(), ex.latency_ns);
    }

    #[test]
    fn degraded_and_brownout_segments_label_by_priority() {
        let mut a = Attribution::new();
        a.observe(0, &Event::MechBrownout { worker: 3, losses: 2 });
        a.observe(0, &start(3, 9));
        // 0..300 browned out, then degradation flips the label.
        a.observe(300, &Event::MechDegraded { worker: 3, losses: 3 });
        a.observe(700, &Event::TaskFinish { worker: 3, fiber: 9, latency_ns: 700 });
        let ex = a.stats().worst().unwrap();
        assert_eq!(ex.phase(Phase::BrownoutHeld), 300);
        assert_eq!(ex.phase(Phase::DegradedSignal), 400);
        assert_eq!(ex.phase(Phase::Running), 0);
        assert_eq!(ex.phase_sum(), 700);
    }

    #[test]
    fn preempted_fiber_resumes_with_fresh_segment() {
        let mut a = Attribution::new();
        a.observe(0, &start(0, 4));
        a.observe(1_000, &Event::Preempt { worker: 0, fiber: 4, ran_ns: 1_000 });
        // Parked 1000..5000 (queued), switch window 5000..5200, second
        // slice 5200..6000.
        a.observe(5_000, &Event::SwitchBegin { worker: 1, fiber: 4, resumed: true });
        a.observe(5_200, &Event::TaskStart { worker: 1, fiber: 4, resumed: true, switch_ns: 200 });
        a.observe(6_000, &Event::TaskFinish { worker: 1, fiber: 4, latency_ns: 6_000 });
        let ex = a.stats().worst().unwrap();
        assert_eq!(ex.phase(Phase::Running), 1_800);
        assert_eq!(ex.phase(Phase::PreemptSwitch), 200);
        assert_eq!(ex.phase(Phase::Queued), 4_000);
        assert_eq!(ex.phase_sum(), 6_000);
    }

    #[test]
    fn exemplars_keep_the_worst_and_order_deterministically() {
        let mut s = PhaseStats::default();
        for (i, lat) in [500u64, 900, 100, 700, 300, 900].iter().enumerate() {
            let mut phase_ns = [0u64; Phase::COUNT];
            phase_ns[Phase::Queued as usize] = *lat;
            s.record(Exemplar {
                fiber: i as u32,
                worker: 0,
                finished_at_ns: i as u64 * 10,
                latency_ns: *lat,
                phase_ns,
            });
        }
        let exs = s.exemplars();
        assert_eq!(exs.len(), EXEMPLAR_SLOTS);
        let lats: Vec<u64> = exs.iter().map(|e| e.latency_ns).collect();
        assert_eq!(lats, vec![900, 900, 700, 500]);
        // Ties order by earlier finish.
        assert!(exs[0].finished_at_ns < exs[1].finished_at_ns);
        assert_eq!(s.completions(), 6);
        assert_eq!(s.end_to_end.count(), 6);
        assert_eq!(s.per_phase[Phase::Queued as usize].count(), 6);
    }

    #[test]
    fn disabled_accountant_records_nothing() {
        let mut a = Attribution::new();
        a.set_enabled(false);
        a.observe(0, &start(0, 1));
        a.observe(100, &Event::TaskFinish { worker: 0, fiber: 1, latency_ns: 100 });
        assert_eq!(a.stats().completions(), 0);
        assert!(a.stats().worst().is_none());
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = Attribution::new();
        a.observe(0, &start(0, 1));
        a.observe(100, &Event::TaskFinish { worker: 0, fiber: 1, latency_ns: 100 });
        let mut b = Attribution::new();
        b.observe(0, &start(0, 2));
        b.observe(900, &Event::TaskFinish { worker: 0, fiber: 2, latency_ns: 900 });
        let mut s = a.take_stats();
        s.merge(b.stats());
        assert_eq!(s.completions(), 2);
        assert_eq!(s.worst().unwrap().latency_ns, 900);
        // take_stats left the accountant empty but live.
        assert_eq!(a.stats().completions(), 0);
    }
}
