//! The preallocated typed event ring.
//!
//! A circular buffer of [`TimedEvent`]s with all storage allocated at
//! construction: pushing is a bounds-checked store plus an index
//! wrap — never an allocation — which is what lets the runtime leave
//! tracing threaded through its hot paths.

use super::event::TimedEvent;

/// Fixed-capacity circular buffer of recent events, oldest evicted
/// first.
///
/// Capacity 0 is the disabled ring: pushes are a single branch.
///
/// ```
/// use lp_sim::obs::{Event, EventRing, TimedEvent};
/// use lp_sim::SimTime;
///
/// let mut ring = EventRing::new(2);
/// for i in 0..3 {
///     ring.push(TimedEvent {
///         at: SimTime::from_nanos(i),
///         ev: Event::Marker { code: i as u32 },
///     });
/// }
/// let codes: Vec<u32> = ring
///     .iter()
///     .map(|t| match t.ev { Event::Marker { code } => code, _ => unreachable!() })
///     .collect();
/// assert_eq!(codes, [1, 2]); // marker 0 was evicted
/// assert_eq!(ring.overwritten(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TimedEvent>,
    capacity: usize,
    /// Index of the oldest record once the buffer is full (also the
    /// next slot to overwrite).
    head: usize,
    overwritten: u64,
}

impl EventRing {
    /// A ring holding the last `capacity` events. All storage is
    /// reserved up front; capacity 0 records nothing.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            overwritten: 0,
        }
    }

    /// `true` when events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, overwriting the oldest when full. Never
    /// allocates: the buffer was reserved in [`new`](Self::new).
    #[inline]
    pub fn push(&mut self, te: TimedEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(te);
        } else {
            self.buf[self.head] = te;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.overwritten += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        // Once full, `head` points at the oldest record: entries from
        // `head` on are older than the wrapped-around prefix.
        let (newer, older) = self.buf.split_at(self.head.min(self.buf.len()));
        older.iter().chain(newer.iter())
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted so far.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Drains the ring into a vector, oldest first.
    pub fn take(&mut self) -> Vec<TimedEvent> {
        let out: Vec<TimedEvent> = self.iter().copied().collect();
        self.buf.clear();
        self.head = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Event;
    use crate::time::SimTime;

    fn marker(i: u64) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_nanos(i),
            ev: Event::Marker { code: i as u32 },
        }
    }

    fn codes(ring: &EventRing) -> Vec<u32> {
        ring.iter()
            .map(|t| match t.ev {
                Event::Marker { code } => code,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = EventRing::new(4);
        for i in 0..4 {
            r.push(marker(i));
        }
        assert_eq!(codes(&r), [0, 1, 2, 3]);
        assert_eq!(r.overwritten(), 0);
        for i in 4..10 {
            r.push(marker(i));
        }
        assert_eq!(codes(&r), [6, 7, 8, 9]);
        assert_eq!(r.overwritten(), 6);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn push_never_reallocates() {
        let mut r = EventRing::new(8);
        let cap_before = r.buf.capacity();
        let ptr_before = r.buf.as_ptr();
        for i in 0..1_000 {
            r.push(marker(i));
        }
        assert_eq!(r.buf.capacity(), cap_before);
        assert_eq!(r.buf.as_ptr(), ptr_before, "buffer must never move");
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut r = EventRing::new(0);
        assert!(!r.is_enabled());
        r.push(marker(1));
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 0);
        assert_eq!(r.take(), vec![]);
    }

    #[test]
    fn take_drains_in_order() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(marker(i));
        }
        let drained = r.take();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].ev, Event::Marker { code: 2 });
        assert_eq!(drained[2].ev, Event::Marker { code: 4 });
        assert!(r.is_empty());
        // Reusable after take.
        r.push(marker(9));
        assert_eq!(codes(&r), [9]);
    }
}
