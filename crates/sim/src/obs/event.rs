//! The typed event vocabulary shared by every layer of the stack.
//!
//! One `enum` — [`Event`] — names everything the reproduction can
//! observe, from the architectural `SENDUIPI` up to the runtime's
//! quantum controller. Variants are plain `Copy` data (ids and
//! nanosecond quantities only, no strings, no heap), so recording one
//! costs a couple of stores. The full schema, with the emitting module
//! and the paper figure each event speaks to, is documented in
//! `docs/TRACING.md`.

use std::fmt;

use crate::time::SimTime;

/// One observable occurrence somewhere in the stack.
///
/// Field conventions: `worker` is the worker-core index, `slot` a
/// LibUtimer deadline-slot index, `fiber` the context-pool index of a
/// preemptible function, `class` the workload class (0 = LC, 1 = BE),
/// and `*_ns` quantities are nanoseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    // ---- hardware (lp-hw::uintr) ----
    /// The timer core executed `SENDUIPI` targeting `worker`.
    UipiSent {
        /// Receiver worker.
        worker: u16,
        /// User vector posted into the UPID's PUIR bitmap.
        vector: u8,
    },
    /// A user interrupt was delivered (the receiver acknowledged and
    /// drained its PUIR bitmap).
    UipiDelivered {
        /// Receiver worker.
        worker: u16,
        /// More than one posted vector drained at once — earlier sends
        /// were coalesced into this notification.
        coalesced: bool,
    },
    /// A send found the receiver masked (`UIF = 0`); the vector pends.
    UipiPended {
        /// Receiver worker.
        worker: u16,
    },
    /// A send found notifications suppressed (`SN = 1`).
    UipiSuppressed {
        /// Receiver worker.
        worker: u16,
    },
    /// A send found the receiver blocked in the kernel: the slow
    /// kernel-assisted wakeup path (Table IV's "uintrFd (blocked)").
    KernelAssistWake {
        /// Receiver worker.
        worker: u16,
    },

    // ---- kernel (lp-kernel) ----
    /// A kernel signal was sent (tgkill / timer softirq → handler).
    SignalSent {
        /// Receiver worker.
        worker: u16,
        /// Time spent waiting on the kernel signal lock (§V-B).
        lock_wait_ns: u64,
    },
    /// A per-thread kernel timer was armed (`timer_settime`).
    KtimerArmed {
        /// Owning worker.
        worker: u16,
        /// Requested interval.
        target_ns: u64,
    },
    /// A per-thread kernel timer expired (softirq fired).
    KtimerFired {
        /// Owning worker.
        worker: u16,
    },
    /// One IPC ping-pong notification was sampled (Table IV).
    IpcSampled {
        /// Mechanism index into `IpcMechanism::ALL` (0 = signal … 5 =
        /// uintrFd blocked).
        mech: u8,
        /// Sampled one-way notification latency.
        latency_ns: u64,
    },

    // ---- LibUtimer (libpreemptible::utimer) ----
    /// A deadline slot was armed (`utimer_arm_deadline`, one cacheline
    /// write).
    DeadlineArmed {
        /// Deadline slot.
        slot: u16,
        /// Absolute expiry instant.
        deadline_ns: u64,
    },
    /// A deadline slot was disarmed before expiry (task finished or
    /// yielded early).
    DeadlineDisarmed {
        /// Deadline slot.
        slot: u16,
    },
    /// The timer core's poll loop scanned the slots and found expiries.
    TimerPoll {
        /// Number of deadline slots that had expired at this tick.
        expired: u16,
    },

    // ---- runtime (libpreemptible::runtime / adaptive) ----
    /// A request arrived at the network thread.
    Arrival {
        /// Workload class.
        class: u8,
    },
    /// A request was dropped on context-pool exhaustion.
    Drop {
        /// Workload class.
        class: u8,
    },
    /// A worker launched or resumed a preemptible function.
    TaskStart {
        /// Executing worker.
        worker: u16,
        /// Context-pool index.
        fiber: u32,
        /// `true` when resuming a previously preempted function.
        resumed: bool,
        /// Nanoseconds spent in the context-switch window that ended
        /// here (dispatch pick + fcontext switch + arming) — the span
        /// since the matching [`Event::SwitchBegin`]. Carried on the
        /// event so the tail-attribution accountant charges
        /// `preempt_switch` from this event alone.
        switch_ns: u32,
    },
    /// A request ran to completion.
    TaskFinish {
        /// Executing worker.
        worker: u16,
        /// Context-pool index.
        fiber: u32,
        /// End-to-end latency (arrival → completion).
        latency_ns: u64,
    },
    /// A preemption landed: the handler parked the running function and
    /// returned to the local scheduler.
    Preempt {
        /// Preempted worker.
        worker: u16,
        /// Context-pool index of the parked function.
        fiber: u32,
        /// How long the function ran in this slice.
        ran_ns: u64,
    },
    /// A preemption notification raced completion (or found the worker
    /// idle): the handler ran but there was nothing to park.
    SpuriousPreempt {
        /// Interrupted worker.
        worker: u16,
    },
    /// The scheduling policy placed a dispatched request on a worker's
    /// local queue (`select_cpu`), or declined and the runtime used
    /// join-shortest-queue.
    PolicyDispatch {
        /// Worker whose local queue received the request.
        worker: u16,
        /// `true` when the policy chose the worker; `false` for the
        /// runtime's JSQ fallback.
        explicit: bool,
    },
    /// The scheduling policy granted a finite time slice to a task
    /// starting (or resuming) on a worker. Not emitted for
    /// run-to-completion slices or when preemption is disabled.
    SliceGranted {
        /// Worker the task starts on.
        worker: u16,
        /// Context-pool index of the task.
        fiber: u32,
        /// Granted slice length.
        slice_ns: u64,
    },
    /// A worker began a context switch toward a fiber: the dispatch
    /// pick plus fcontext-switch window that ends at the matching
    /// [`Event::TaskStart`] (which carries the window's duration as
    /// `switch_ns`, charged to the fiber's `preempt_switch` phase —
    /// see `docs/TRACING.md`). Trace exports render this window as a
    /// switch slice.
    SwitchBegin {
        /// Worker doing the switch.
        worker: u16,
        /// Context-pool index of the incoming fiber.
        fiber: u32,
        /// `true` when resuming a previously preempted function.
        resumed: bool,
    },
    /// Algorithm 1 changed the global time quantum.
    QuantumAdjusted {
        /// Quantum before the control step.
        old_ns: u64,
        /// Quantum after the control step.
        new_ns: u64,
    },
    /// Free-form user annotation (experiments mark phase boundaries).
    Marker {
        /// Caller-defined code.
        code: u32,
    },

    // ---- resilience (lp_sim::fault + runtime watchdog) ----
    /// The fault injector fired: one planned fault was injected.
    FaultInjected {
        /// Worker the fault targets (the victim of the lost delivery,
        /// stalled core, etc.).
        worker: u16,
        /// `FaultKind` wire code (see `lp_sim::fault::FaultKind`).
        kind: u8,
    },
    /// The runtime issued one preemption send toward a worker. The
    /// `(worker, seq)` pair is the preemption's stable causality
    /// identity: the matching [`Event::PreemptLanded`] carries the same
    /// pair, giving `lp-check race` its send→deliver happens-before
    /// edge.
    PreemptIssued {
        /// Worker the send targets.
        worker: u16,
        /// Run sequence the send is armed for (stale deliveries carry
        /// an older seq and are ignored by the victim).
        seq: u64,
        /// Send attempt (0 = first send, 1+ = watchdog re-sends).
        attempt: u8,
        /// True for the UINTR path, false for the kernel signal path.
        uintr: bool,
    },
    /// A preemption landed on its victim while the victim was still on
    /// the matching run: the receiving half of the
    /// [`Event::PreemptIssued`] causality edge. Stale or spurious
    /// arrivals do not emit this (they emit
    /// [`Event::SpuriousPreempt`]).
    PreemptLanded {
        /// Worker the preemption landed on.
        worker: u16,
        /// Run sequence the arrival matched.
        seq: u64,
        /// True when delivery came over the user-interrupt path.
        uintr: bool,
    },
    /// The lost-preemption watchdog re-sent an armed preemption whose
    /// deadline passed without delivery.
    PreemptRetry {
        /// Worker whose preemption went missing.
        worker: u16,
        /// Run sequence of the lost send (joins the retry to its
        /// re-send in the happens-before graph).
        seq: u64,
        /// Retry attempt number (1 = first re-send).
        attempt: u8,
        /// Backoff delay applied before the next watchdog check.
        delay_ns: u64,
    },
    /// After N consecutive UINTR losses the runtime degraded this
    /// worker's preemption mechanism to the kernel signal path.
    MechDegraded {
        /// Degraded worker.
        worker: u16,
        /// Consecutive losses that triggered the degradation.
        losses: u8,
    },
    /// A UINTR probe succeeded on a degraded worker: the runtime
    /// recovered it back to the fast user-interrupt path.
    MechRecovered {
        /// Recovered worker.
        worker: u16,
    },
    /// A worker entered the brownout tier: repeated UINTR losses short
    /// of the degrade threshold. The fast path stays in use but the
    /// admission controller treats the worker as pressured.
    MechBrownout {
        /// Browned-out worker.
        worker: u16,
        /// Consecutive losses that triggered the brownout.
        losses: u8,
    },
    /// The admission controller rejected a request at dispatch: queues
    /// (or the deadline estimate) said it could not finish usefully.
    Shed {
        /// Workload class.
        class: u8,
        /// Total requests queued runtime-wide at the decision.
        queued: u32,
    },
    /// The admission controller admitted a request while the runtime
    /// was under pressure (only emitted under pressure, so an idle
    /// armed controller stays invisible).
    Admitted {
        /// Workload class.
        class: u8,
        /// Total requests queued runtime-wide at the decision.
        queued: u32,
    },
}

impl Event {
    /// The event's stable schema name (the `"ev"` value in JSONL).
    pub const fn name(self) -> &'static str {
        match self {
            Event::UipiSent { .. } => "uipi_sent",
            Event::UipiDelivered { .. } => "uipi_delivered",
            Event::UipiPended { .. } => "uipi_pended",
            Event::UipiSuppressed { .. } => "uipi_suppressed",
            Event::KernelAssistWake { .. } => "kernel_assist_wake",
            Event::SignalSent { .. } => "signal_sent",
            Event::KtimerArmed { .. } => "ktimer_armed",
            Event::KtimerFired { .. } => "ktimer_fired",
            Event::IpcSampled { .. } => "ipc_sampled",
            Event::DeadlineArmed { .. } => "deadline_armed",
            Event::DeadlineDisarmed { .. } => "deadline_disarmed",
            Event::TimerPoll { .. } => "timer_poll",
            Event::Arrival { .. } => "arrival",
            Event::Drop { .. } => "drop",
            Event::TaskStart { .. } => "task_start",
            Event::TaskFinish { .. } => "task_finish",
            Event::Preempt { .. } => "preempt",
            Event::SpuriousPreempt { .. } => "spurious_preempt",
            Event::PolicyDispatch { .. } => "policy_dispatch",
            Event::SliceGranted { .. } => "slice_granted",
            Event::SwitchBegin { .. } => "switch_begin",
            Event::QuantumAdjusted { .. } => "quantum_adjusted",
            Event::Marker { .. } => "marker",
            Event::FaultInjected { .. } => "fault_injected",
            Event::PreemptIssued { .. } => "preempt_issued",
            Event::PreemptLanded { .. } => "preempt_landed",
            Event::PreemptRetry { .. } => "preempt_retry",
            Event::MechDegraded { .. } => "mech_degraded",
            Event::MechRecovered { .. } => "mech_recovered",
            Event::MechBrownout { .. } => "mech_brownout",
            Event::Shed { .. } => "shed",
            Event::Admitted { .. } => "admitted",
        }
    }
}

impl fmt::Display for Event {
    /// Human-oriented one-line rendering, used for the legacy string
    /// [`TraceRing`](crate::trace::TraceRing) view of the typed stream.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::UipiSent { worker, vector } => {
                write!(f, "SENDUIPI -> worker {worker} (vector {vector})")
            }
            Event::UipiDelivered { worker, coalesced } => {
                if coalesced {
                    write!(f, "uintr delivered to worker {worker} (coalesced)")
                } else {
                    write!(f, "uintr delivered to worker {worker}")
                }
            }
            Event::UipiPended { worker } => write!(f, "uintr pended at worker {worker} (UIF=0)"),
            Event::UipiSuppressed { worker } => {
                write!(f, "uintr suppressed at worker {worker} (SN=1)")
            }
            Event::KernelAssistWake { worker } => {
                write!(f, "kernel-assisted wakeup of worker {worker}")
            }
            Event::SignalSent { worker, lock_wait_ns } => {
                write!(f, "signal -> worker {worker} (lock wait {lock_wait_ns}ns)")
            }
            Event::KtimerArmed { worker, target_ns } => {
                write!(f, "ktimer armed on worker {worker} for {target_ns}ns")
            }
            Event::KtimerFired { worker } => write!(f, "ktimer fired on worker {worker}"),
            Event::IpcSampled { mech, latency_ns } => {
                write!(f, "ipc sample mech {mech}: {latency_ns}ns")
            }
            Event::DeadlineArmed { slot, deadline_ns } => {
                write!(f, "deadline slot {slot} armed for t={deadline_ns}ns")
            }
            Event::DeadlineDisarmed { slot } => write!(f, "deadline slot {slot} disarmed"),
            Event::TimerPoll { expired } => {
                write!(f, "timer core poll: {expired} deadline(s) expired")
            }
            Event::Arrival { class } => write!(f, "arrival (class {class})"),
            Event::Drop { class } => write!(f, "drop (class {class}, pool full)"),
            Event::TaskStart { worker, fiber, resumed, switch_ns } => {
                let verb = if resumed { "resume" } else { "start" };
                write!(f, "{verb} fiber {fiber} on worker {worker} (switch {switch_ns}ns)")
            }
            Event::TaskFinish { worker, fiber, latency_ns } => {
                write!(f, "finish fiber {fiber} on worker {worker} (latency {latency_ns}ns)")
            }
            Event::Preempt { worker, fiber, ran_ns } => {
                write!(f, "preempt fiber {fiber} on worker {worker} (ran {ran_ns}ns)")
            }
            Event::SpuriousPreempt { worker } => {
                write!(f, "spurious preemption at worker {worker}")
            }
            Event::PolicyDispatch { worker, explicit } => {
                let how = if explicit { "policy" } else { "jsq" };
                write!(f, "dispatch to worker {worker} ({how})")
            }
            Event::SliceGranted { worker, fiber, slice_ns } => {
                write!(f, "slice {slice_ns}ns granted to fiber {fiber} on worker {worker}")
            }
            Event::SwitchBegin { worker, fiber, resumed } => {
                let verb = if resumed { "resume" } else { "launch" };
                write!(f, "switch toward fiber {fiber} on worker {worker} ({verb})")
            }
            Event::QuantumAdjusted { old_ns, new_ns } => {
                write!(f, "quantum {old_ns}ns -> {new_ns}ns")
            }
            Event::Marker { code } => write!(f, "marker {code}"),
            Event::FaultInjected { worker, kind } => {
                write!(f, "fault kind {kind} injected at worker {worker}")
            }
            Event::PreemptIssued { worker, seq, attempt, uintr } => {
                let path = if uintr { "uintr" } else { "signal" };
                write!(
                    f,
                    "preempt seq {seq} issued to worker {worker} over {path} (attempt {attempt})"
                )
            }
            Event::PreemptLanded { worker, seq, uintr } => {
                let path = if uintr { "uintr" } else { "signal" };
                write!(f, "preempt seq {seq} landed on worker {worker} over {path}")
            }
            Event::PreemptRetry { worker, seq, attempt, delay_ns } => {
                write!(
                    f,
                    "preempt seq {seq} re-sent to worker {worker} (attempt {attempt}, backoff {delay_ns}ns)"
                )
            }
            Event::MechDegraded { worker, losses } => {
                write!(f, "worker {worker} degraded to signal path after {losses} losses")
            }
            Event::MechRecovered { worker } => {
                write!(f, "worker {worker} recovered to uintr path")
            }
            Event::MechBrownout { worker, losses } => {
                write!(f, "worker {worker} browned out after {losses} losses")
            }
            Event::Shed { class, queued } => {
                write!(f, "shed (class {class}, {queued} queued)")
            }
            Event::Admitted { class, queued } => {
                write!(f, "admitted under pressure (class {class}, {queued} queued)")
            }
        }
    }
}

/// An [`Event`] stamped with the simulation instant it was emitted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub ev: Event,
}

impl TimedEvent {
    /// Appends the event as one JSON line (no trailing newline) to
    /// `out`.
    ///
    /// The key order is fixed per variant — `t`, `ev`, then the fields
    /// in declaration order — so identical event streams serialize to
    /// identical bytes, which the determinism tests rely on.
    pub fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write as _;
        let t = self.at.as_nanos();
        let name = self.ev.name();
        let _ = write!(out, "{{\"t\":{t},\"ev\":\"{name}\"");
        match self.ev {
            Event::UipiSent { worker, vector } => {
                let _ = write!(out, ",\"worker\":{worker},\"vector\":{vector}");
            }
            Event::UipiDelivered { worker, coalesced } => {
                let _ = write!(out, ",\"worker\":{worker},\"coalesced\":{coalesced}");
            }
            Event::UipiPended { worker }
            | Event::UipiSuppressed { worker }
            | Event::KernelAssistWake { worker }
            | Event::KtimerFired { worker }
            | Event::SpuriousPreempt { worker } => {
                let _ = write!(out, ",\"worker\":{worker}");
            }
            Event::SignalSent { worker, lock_wait_ns } => {
                let _ = write!(out, ",\"worker\":{worker},\"lock_wait_ns\":{lock_wait_ns}");
            }
            Event::KtimerArmed { worker, target_ns } => {
                let _ = write!(out, ",\"worker\":{worker},\"target_ns\":{target_ns}");
            }
            Event::IpcSampled { mech, latency_ns } => {
                let _ = write!(out, ",\"mech\":{mech},\"latency_ns\":{latency_ns}");
            }
            Event::DeadlineArmed { slot, deadline_ns } => {
                let _ = write!(out, ",\"slot\":{slot},\"deadline_ns\":{deadline_ns}");
            }
            Event::DeadlineDisarmed { slot } => {
                let _ = write!(out, ",\"slot\":{slot}");
            }
            Event::TimerPoll { expired } => {
                let _ = write!(out, ",\"expired\":{expired}");
            }
            Event::Arrival { class } | Event::Drop { class } => {
                let _ = write!(out, ",\"class\":{class}");
            }
            Event::TaskStart { worker, fiber, resumed, switch_ns } => {
                let _ = write!(
                    out,
                    ",\"worker\":{worker},\"fiber\":{fiber},\"resumed\":{resumed},\"switch_ns\":{switch_ns}"
                );
            }
            Event::TaskFinish { worker, fiber, latency_ns } => {
                let _ = write!(
                    out,
                    ",\"worker\":{worker},\"fiber\":{fiber},\"latency_ns\":{latency_ns}"
                );
            }
            Event::Preempt { worker, fiber, ran_ns } => {
                let _ = write!(out, ",\"worker\":{worker},\"fiber\":{fiber},\"ran_ns\":{ran_ns}");
            }
            Event::PolicyDispatch { worker, explicit } => {
                let _ = write!(out, ",\"worker\":{worker},\"explicit\":{explicit}");
            }
            Event::SliceGranted { worker, fiber, slice_ns } => {
                let _ = write!(out, ",\"worker\":{worker},\"fiber\":{fiber},\"slice_ns\":{slice_ns}");
            }
            Event::SwitchBegin { worker, fiber, resumed } => {
                let _ = write!(out, ",\"worker\":{worker},\"fiber\":{fiber},\"resumed\":{resumed}");
            }
            Event::QuantumAdjusted { old_ns, new_ns } => {
                let _ = write!(out, ",\"old_ns\":{old_ns},\"new_ns\":{new_ns}");
            }
            Event::Marker { code } => {
                let _ = write!(out, ",\"code\":{code}");
            }
            Event::FaultInjected { worker, kind } => {
                let _ = write!(out, ",\"worker\":{worker},\"kind\":{kind}");
            }
            Event::PreemptIssued { worker, seq, attempt, uintr } => {
                let _ = write!(
                    out,
                    ",\"worker\":{worker},\"seq\":{seq},\"attempt\":{attempt},\"uintr\":{uintr}"
                );
            }
            Event::PreemptLanded { worker, seq, uintr } => {
                let _ = write!(out, ",\"worker\":{worker},\"seq\":{seq},\"uintr\":{uintr}");
            }
            Event::PreemptRetry { worker, seq, attempt, delay_ns } => {
                let _ = write!(
                    out,
                    ",\"worker\":{worker},\"seq\":{seq},\"attempt\":{attempt},\"delay_ns\":{delay_ns}"
                );
            }
            Event::MechDegraded { worker, losses } => {
                let _ = write!(out, ",\"worker\":{worker},\"losses\":{losses}");
            }
            Event::MechRecovered { worker } => {
                let _ = write!(out, ",\"worker\":{worker}");
            }
            Event::MechBrownout { worker, losses } => {
                let _ = write!(out, ",\"worker\":{worker},\"losses\":{losses}");
            }
            Event::Shed { class, queued } | Event::Admitted { class, queued } => {
                let _ = write!(out, ",\"class\":{class},\"queued\":{queued}");
            }
        }
        out.push('}');
    }

    /// The event as one JSON line.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        self.write_jsonl(&mut s);
        s
    }

    /// Parses a line produced by [`write_jsonl`](Self::write_jsonl).
    ///
    /// This is a schema-aware reader for the exporter's own output (it
    /// tolerates reordered keys and extra whitespace but is not a
    /// general JSON parser). Returns `None` on unknown event names or
    /// missing fields.
    pub fn parse_jsonl(line: &str) -> Option<TimedEvent> {
        let t = field_u64(line, "t")?;
        let name = field_str(line, "ev")?;
        let ev = match name {
            "uipi_sent" => Event::UipiSent {
                worker: field_u64(line, "worker")? as u16,
                vector: field_u64(line, "vector")? as u8,
            },
            "uipi_delivered" => Event::UipiDelivered {
                worker: field_u64(line, "worker")? as u16,
                coalesced: field_bool(line, "coalesced")?,
            },
            "uipi_pended" => Event::UipiPended { worker: field_u64(line, "worker")? as u16 },
            "uipi_suppressed" => {
                Event::UipiSuppressed { worker: field_u64(line, "worker")? as u16 }
            }
            "kernel_assist_wake" => {
                Event::KernelAssistWake { worker: field_u64(line, "worker")? as u16 }
            }
            "signal_sent" => Event::SignalSent {
                worker: field_u64(line, "worker")? as u16,
                lock_wait_ns: field_u64(line, "lock_wait_ns")?,
            },
            "ktimer_armed" => Event::KtimerArmed {
                worker: field_u64(line, "worker")? as u16,
                target_ns: field_u64(line, "target_ns")?,
            },
            "ktimer_fired" => Event::KtimerFired { worker: field_u64(line, "worker")? as u16 },
            "ipc_sampled" => Event::IpcSampled {
                mech: field_u64(line, "mech")? as u8,
                latency_ns: field_u64(line, "latency_ns")?,
            },
            "deadline_armed" => Event::DeadlineArmed {
                slot: field_u64(line, "slot")? as u16,
                deadline_ns: field_u64(line, "deadline_ns")?,
            },
            "deadline_disarmed" => {
                Event::DeadlineDisarmed { slot: field_u64(line, "slot")? as u16 }
            }
            "timer_poll" => Event::TimerPoll { expired: field_u64(line, "expired")? as u16 },
            "arrival" => Event::Arrival { class: field_u64(line, "class")? as u8 },
            "drop" => Event::Drop { class: field_u64(line, "class")? as u8 },
            "task_start" => Event::TaskStart {
                worker: field_u64(line, "worker")? as u16,
                fiber: field_u64(line, "fiber")? as u32,
                resumed: field_bool(line, "resumed")?,
                switch_ns: field_u64(line, "switch_ns")? as u32,
            },
            "task_finish" => Event::TaskFinish {
                worker: field_u64(line, "worker")? as u16,
                fiber: field_u64(line, "fiber")? as u32,
                latency_ns: field_u64(line, "latency_ns")?,
            },
            "preempt" => Event::Preempt {
                worker: field_u64(line, "worker")? as u16,
                fiber: field_u64(line, "fiber")? as u32,
                ran_ns: field_u64(line, "ran_ns")?,
            },
            "spurious_preempt" => {
                Event::SpuriousPreempt { worker: field_u64(line, "worker")? as u16 }
            }
            "policy_dispatch" => Event::PolicyDispatch {
                worker: field_u64(line, "worker")? as u16,
                explicit: field_bool(line, "explicit")?,
            },
            "slice_granted" => Event::SliceGranted {
                worker: field_u64(line, "worker")? as u16,
                fiber: field_u64(line, "fiber")? as u32,
                slice_ns: field_u64(line, "slice_ns")?,
            },
            "switch_begin" => Event::SwitchBegin {
                worker: field_u64(line, "worker")? as u16,
                fiber: field_u64(line, "fiber")? as u32,
                resumed: field_bool(line, "resumed")?,
            },
            "quantum_adjusted" => Event::QuantumAdjusted {
                old_ns: field_u64(line, "old_ns")?,
                new_ns: field_u64(line, "new_ns")?,
            },
            "marker" => Event::Marker { code: field_u64(line, "code")? as u32 },
            "fault_injected" => Event::FaultInjected {
                worker: field_u64(line, "worker")? as u16,
                kind: field_u64(line, "kind")? as u8,
            },
            "preempt_issued" => Event::PreemptIssued {
                worker: field_u64(line, "worker")? as u16,
                seq: field_u64(line, "seq")?,
                attempt: field_u64(line, "attempt")? as u8,
                uintr: field_bool(line, "uintr")?,
            },
            "preempt_landed" => Event::PreemptLanded {
                worker: field_u64(line, "worker")? as u16,
                seq: field_u64(line, "seq")?,
                uintr: field_bool(line, "uintr")?,
            },
            "preempt_retry" => Event::PreemptRetry {
                worker: field_u64(line, "worker")? as u16,
                seq: field_u64(line, "seq")?,
                attempt: field_u64(line, "attempt")? as u8,
                delay_ns: field_u64(line, "delay_ns")?,
            },
            "mech_degraded" => Event::MechDegraded {
                worker: field_u64(line, "worker")? as u16,
                losses: field_u64(line, "losses")? as u8,
            },
            "mech_recovered" => {
                Event::MechRecovered { worker: field_u64(line, "worker")? as u16 }
            }
            "mech_brownout" => Event::MechBrownout {
                worker: field_u64(line, "worker")? as u16,
                losses: field_u64(line, "losses")? as u8,
            },
            "shed" => Event::Shed {
                class: field_u64(line, "class")? as u8,
                queued: field_u64(line, "queued")? as u32,
            },
            "admitted" => Event::Admitted {
                class: field_u64(line, "class")? as u8,
                queued: field_u64(line, "queued")? as u32,
            },
            _ => return None,
        };
        Some(TimedEvent { at: SimTime::from_nanos(t), ev })
    }
}

/// The raw text of `"key":` followed by its value start, or `None`.
fn field_pos<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)?;
    Some(line[at + needle.len()..].trim_start())
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let rest = field_pos(line, key)?;
    let digits: &str = rest.split(|c: char| !c.is_ascii_digit()).next()?;
    digits.parse().ok()
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    let rest = field_pos(line, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = field_pos(line, key)?;
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// One instance of every variant, for exhaustive schema tests.
    pub(crate) fn one_of_each() -> Vec<TimedEvent> {
        let evs = [
            Event::UipiSent { worker: 3, vector: 0 },
            Event::UipiDelivered { worker: 3, coalesced: true },
            Event::UipiPended { worker: 1 },
            Event::UipiSuppressed { worker: 2 },
            Event::KernelAssistWake { worker: 0 },
            Event::SignalSent { worker: 5, lock_wait_ns: 1_200 },
            Event::KtimerArmed { worker: 4, target_ns: 60_000 },
            Event::KtimerFired { worker: 4 },
            Event::IpcSampled { mech: 5, latency_ns: 4_096 },
            Event::DeadlineArmed { slot: 7, deadline_ns: 99_000 },
            Event::DeadlineDisarmed { slot: 7 },
            Event::TimerPoll { expired: 2 },
            Event::Arrival { class: 0 },
            Event::Drop { class: 1 },
            Event::TaskStart { worker: 0, fiber: 12, resumed: false, switch_ns: 650 },
            Event::TaskFinish { worker: 0, fiber: 12, latency_ns: 88_000 },
            Event::Preempt { worker: 0, fiber: 12, ran_ns: 10_000 },
            Event::SpuriousPreempt { worker: 6 },
            Event::PolicyDispatch { worker: 3, explicit: true },
            Event::SliceGranted { worker: 3, fiber: 12, slice_ns: 10_000 },
            Event::SwitchBegin { worker: 3, fiber: 12, resumed: true },
            Event::QuantumAdjusted { old_ns: 30_000, new_ns: 25_000 },
            Event::Marker { code: 42 },
            Event::FaultInjected { worker: 1, kind: 0 },
            Event::PreemptIssued { worker: 1, seq: 9, attempt: 0, uintr: true },
            Event::PreemptLanded { worker: 1, seq: 9, uintr: true },
            Event::PreemptRetry { worker: 1, seq: 9, attempt: 2, delay_ns: 40_000 },
            Event::MechDegraded { worker: 1, losses: 3 },
            Event::MechRecovered { worker: 1 },
            Event::MechBrownout { worker: 1, losses: 2 },
            Event::Shed { class: 1, queued: 257 },
            Event::Admitted { class: 0, queued: 31 },
        ];
        evs.iter()
            .enumerate()
            .map(|(i, &ev)| TimedEvent { at: t(100 * i as u64), ev })
            .collect()
    }

    #[test]
    fn events_are_small_and_copy() {
        // The hot-path contract: an event is a handful of words, not a
        // heap structure.
        assert!(std::mem::size_of::<Event>() <= 24, "{}", std::mem::size_of::<Event>());
        assert!(std::mem::size_of::<TimedEvent>() <= 32);
        let e = Event::Arrival { class: 0 };
        let f = e; // Copy
        assert_eq!(e, f);
    }

    #[test]
    fn jsonl_roundtrip_every_variant() {
        for te in one_of_each() {
            let line = te.to_jsonl();
            let back = TimedEvent::parse_jsonl(&line)
                .unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(back, te, "{line}");
        }
    }

    #[test]
    fn jsonl_fixed_key_order() {
        let te = TimedEvent {
            at: t(1_234),
            ev: Event::Preempt { worker: 2, fiber: 9, ran_ns: 10_000 },
        };
        assert_eq!(
            te.to_jsonl(),
            r#"{"t":1234,"ev":"preempt","worker":2,"fiber":9,"ran_ns":10000}"#
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TimedEvent::parse_jsonl("not json").is_none());
        assert!(TimedEvent::parse_jsonl(r#"{"t":1,"ev":"no_such_event"}"#).is_none());
        // Missing field.
        assert!(TimedEvent::parse_jsonl(r#"{"t":1,"ev":"preempt","worker":2}"#).is_none());
    }

    #[test]
    fn parse_tolerates_reordered_keys() {
        let line = r#"{"ev":"arrival","class":1,"t":77}"#;
        let te = TimedEvent::parse_jsonl(line).unwrap();
        assert_eq!(te.at, t(77));
        assert_eq!(te.ev, Event::Arrival { class: 1 });
    }

    #[test]
    fn display_is_single_line() {
        for te in one_of_each() {
            let s = te.ev.to_string();
            assert!(!s.is_empty() && !s.contains('\n'), "{s:?}");
        }
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut names: Vec<&str> = one_of_each().iter().map(|t| t.ev.name()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate event names");
        for name in names {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{name} not snake_case"
            );
        }
    }
}
