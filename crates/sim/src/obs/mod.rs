//! Structured cross-layer observability: typed events + metrics.
//!
//! Every layer of the reproduction — the UINTR architecture model
//! (`lp-hw`), the kernel substrate (`lp-kernel`), and the runtime
//! (`libpreemptible`) — emits the same typed [`Event`] vocabulary into
//! one [`Observer`]. The observer couples two sinks:
//!
//! * an [`EventRing`]: a preallocated circular window of the most
//!   recent [`TimedEvent`]s (zero heap allocation on push; capacity 0
//!   disables it entirely), and
//! * a [`Metrics`] registry: always-on [`Counter`]s and [`Gauge`]s,
//!   bumped automatically from every emitted event so the counters can
//!   never drift from the event stream.
//!
//! Event logs export as deterministic JSONL ([`TimedEvent::write_jsonl`]
//! / [`TimedEvent::parse_jsonl`]) — same seed, same bytes — and render
//! into the legacy human-readable string
//! [`TraceRing`] via
//! [`Observer::render_legacy`]. The full event schema is documented in
//! `docs/TRACING.md`.
//!
//! ```
//! use lp_sim::obs::{Counter, Event, Observer};
//! use lp_sim::SimTime;
//!
//! let mut obs = Observer::new(1024);
//! obs.emit(SimTime::from_nanos(100), Event::UipiSent { worker: 0, vector: 0 });
//! obs.emit(
//!     SimTime::from_nanos(450),
//!     Event::UipiDelivered { worker: 0, coalesced: false },
//! );
//! assert_eq!(obs.metrics().get(Counter::UipiSent), 1);
//! assert_eq!(obs.to_jsonl().lines().count(), 2);
//! ```

mod attr;
mod event;
mod metrics;
pub mod perfetto;
mod ring;

pub use attr::{
    Attribution, Exemplar, Phase, PhaseHistogram, PhaseStats, EXEMPLAR_SLOTS, PHASE_HIST_BUCKETS,
};
pub use event::{Event, TimedEvent};
pub use metrics::{Counter, Gauge, Metrics, MetricsSnapshot};
pub use perfetto::chrome_trace;
pub use ring::EventRing;

use crate::time::SimTime;
use crate::trace::TraceRing;

/// The per-run observability hub: a typed event ring, the always-on
/// metrics registry, and the tail-attribution accountant, all fed
/// through one [`emit`](Observer::emit) call.
#[derive(Debug, Clone)]
pub struct Observer {
    ring: EventRing,
    metrics: Metrics,
    attr: Attribution,
}

impl Observer {
    /// An observer keeping the last `ring_capacity` events. Capacity 0
    /// disables the ring; the counters and the phase accountant stay
    /// on regardless.
    pub fn new(ring_capacity: usize) -> Self {
        Observer {
            ring: EventRing::new(ring_capacity),
            metrics: Metrics::new(),
            attr: Attribution::new(),
        }
    }

    /// Counters only, no event window — the production default.
    pub fn counters_only() -> Self {
        Observer::new(0)
    }

    /// Records one event: bumps the mapped counters, advances the
    /// phase accountant, then appends to the ring. No heap allocation
    /// either way (the accountant's flat state grows once to the
    /// pool/worker high-water marks).
    #[inline(always)]
    pub fn emit(&mut self, at: SimTime, ev: Event) {
        self.metrics.account(&ev);
        self.attr.observe(at.as_nanos(), &ev);
        self.ring.push(TimedEvent { at, ev });
    }

    /// The tail-attribution accountant's aggregated stats so far.
    pub fn phases(&mut self) -> &PhaseStats {
        self.attr.stats()
    }

    /// Drains the accountant's aggregated stats for a report, leaving
    /// an empty accountant behind.
    pub fn take_phases(&mut self) -> PhaseStats {
        self.attr.take_stats()
    }

    /// Turns the phase accountant on or off. Attribution ships
    /// always-on; the off switch exists only for `lp-bench`'s
    /// attribution-overhead section (see [`Attribution::set_enabled`]).
    pub fn set_attribution_enabled(&mut self, on: bool) {
        self.attr.set_enabled(on);
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable registry access, for direct counter/gauge updates that
    /// have no event (e.g. per-class core-time accounting).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.ring.iter()
    }

    /// Drains the ring (oldest first), leaving the counters intact.
    pub fn take_events(&mut self) -> Vec<TimedEvent> {
        self.ring.take()
    }

    /// A frozen snapshot of all counters and gauges.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The held events as JSONL, one event per line, oldest first.
    /// Deterministic byte-for-byte for identical event streams.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.ring.len() * 64);
        for te in self.events() {
            te.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// Renders the typed stream into the legacy string
    /// [`TraceRing`] — the human-oriented `dump()` view predating the
    /// typed schema, kept as a rendering of it.
    pub fn render_legacy(&self) -> TraceRing {
        if !self.ring.is_enabled() {
            return TraceRing::disabled();
        }
        let mut ring = TraceRing::new(self.ring.capacity());
        for te in self.events() {
            ring.push(te.at, te.ev.to_string());
        }
        ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn emit_feeds_ring_and_counters() {
        let mut o = Observer::new(16);
        o.emit(t(1), Event::Arrival { class: 0 });
        o.emit(t(2), Event::Drop { class: 0 });
        assert_eq!(o.metrics().get(Counter::Arrivals), 1);
        assert_eq!(o.metrics().get(Counter::Drops), 1);
        assert_eq!(o.ring().len(), 2);
        let evs = o.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].at, t(1));
        // Counters survive the drain.
        assert_eq!(o.metrics().get(Counter::Arrivals), 1);
    }

    #[test]
    fn counters_stay_on_with_ring_disabled() {
        let mut o = Observer::counters_only();
        o.emit(t(1), Event::Preempt { worker: 0, fiber: 3, ran_ns: 5_000 });
        assert_eq!(o.metrics().get(Counter::Preemptions), 1);
        assert!(o.ring().is_empty());
        assert_eq!(o.to_jsonl(), "");
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let mut o = Observer::new(8);
        o.emit(t(10), Event::UipiSent { worker: 1, vector: 0 });
        o.emit(t(20), Event::UipiDelivered { worker: 1, coalesced: false });
        o.emit(t(30), Event::Preempt { worker: 1, fiber: 4, ran_ns: 9_000 });
        let text = o.to_jsonl();
        let parsed: Vec<TimedEvent> = text
            .lines()
            .map(|l| TimedEvent::parse_jsonl(l).expect("parse"))
            .collect();
        let original: Vec<TimedEvent> = o.events().copied().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn legacy_rendering_matches_stream() {
        let mut o = Observer::new(4);
        o.emit(t(1_000), Event::TimerPoll { expired: 1 });
        o.emit(t(2_000), Event::SpuriousPreempt { worker: 2 });
        let legacy = o.render_legacy();
        assert_eq!(legacy.len(), 2);
        let dump = legacy.dump();
        assert!(dump.contains("timer core poll: 1 deadline(s) expired"), "{dump}");
        assert!(dump.contains("spurious preemption at worker 2"), "{dump}");
        // Disabled observer renders a disabled ring.
        assert!(!Observer::counters_only().render_legacy().is_enabled());
    }
}
