//! Perfetto / Chrome `trace_event` JSON export of the event ring.
//!
//! [`chrome_trace`] renders a captured [`TimedEvent`] window into the
//! Chrome trace-event JSON format (the "JSON Array Format" both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load): one track (`tid`) per worker core plus a track 0 for
//! dispatcher/timer-core/global events. Fiber execution renders as
//! duration slices (`ph:"X"`) reconstructed from the
//! [`Event::TaskStart`] → [`Event::Preempt`]/[`Event::TaskFinish`]
//! span pairs; the context-switch window renders as a `switch` slice
//! from [`Event::SwitchBegin`] to the matching `TaskStart` (the same
//! window the phase accountant charges to `PreemptSwitch`); every
//! other event renders as a thread-scoped instant (`ph:"i"`).
//!
//! The output is byte-stable: field order is fixed, timestamps are
//! integer-formatted microseconds with exactly three decimals (the
//! trace format's `ts` unit is µs; simulated time is ns), and entries
//! appear in event order with each slice emitted at its closing event.
//! Same event window, same bytes — the CI `attribution` job diffs the
//! export across `LP_JOBS` values.
//!
//! Robustness: a `TaskStart` on a worker with an open slice closes the
//! old slice at the new start (`end:"truncated"`), and slices still
//! open when the window ends are dropped, matching the ring's
//! sliding-window semantics (see `RunReport::events_dropped`).

use std::fmt::Write as _;

use super::event::{Event, TimedEvent};

/// The trace track (Chrome `tid`) an event renders on: worker-carrying
/// events go to `worker + 1`; dispatcher-global, slot, and free-form
/// events go to track 0.
fn track_of(ev: &Event) -> u32 {
    match *ev {
        Event::UipiSent { worker, .. }
        | Event::UipiDelivered { worker, .. }
        | Event::UipiPended { worker }
        | Event::UipiSuppressed { worker }
        | Event::KernelAssistWake { worker }
        | Event::SignalSent { worker, .. }
        | Event::KtimerArmed { worker, .. }
        | Event::KtimerFired { worker }
        | Event::TaskStart { worker, .. }
        | Event::TaskFinish { worker, .. }
        | Event::Preempt { worker, .. }
        | Event::SpuriousPreempt { worker }
        | Event::PolicyDispatch { worker, .. }
        | Event::SliceGranted { worker, .. }
        | Event::SwitchBegin { worker, .. }
        | Event::FaultInjected { worker, .. }
        | Event::PreemptIssued { worker, .. }
        | Event::PreemptLanded { worker, .. }
        | Event::PreemptRetry { worker, .. }
        | Event::MechDegraded { worker, .. }
        | Event::MechRecovered { worker }
        | Event::MechBrownout { worker, .. } => worker as u32 + 1,
        Event::IpcSampled { .. }
        | Event::DeadlineArmed { .. }
        | Event::DeadlineDisarmed { .. }
        | Event::TimerPoll { .. }
        | Event::Arrival { .. }
        | Event::Drop { .. }
        | Event::QuantumAdjusted { .. }
        | Event::Marker { .. }
        | Event::Shed { .. }
        | Event::Admitted { .. } => 0,
    }
}

/// Appends `ns` as a trace-format `ts`/`dur` value: microseconds with
/// exactly three decimals, computed in integers so the bytes never
/// depend on float formatting.
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn push_meta(out: &mut String, tid: u32, name: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"{name}\"}}}}"
    );
}

/// Renders `events` (one run's captured window, oldest first) as a
/// complete Chrome trace-event JSON document.
pub fn chrome_trace(events: &[TimedEvent]) -> String {
    // Pass 1: how many worker tracks the window needs.
    let mut max_track = 0u32;
    for te in events {
        max_track = max_track.max(track_of(&te.ev));
    }

    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"lp-sim\"}}}}"
    );
    out.push(',');
    push_meta(&mut out, 0, "dispatcher");
    for w in 1..=max_track {
        out.push(',');
        push_meta(&mut out, w, &format!("worker {}", w - 1));
    }

    // Pass 2: open slices per worker track, emit instants inline.
    let mut open: Vec<Option<(u32, u64)>> = vec![None; max_track as usize + 1];
    // Open context-switch windows (`switch_begin` → `task_start`).
    let mut open_switch: Vec<Option<(u32, u64)>> = vec![None; max_track as usize + 1];
    let close_slice =
        |out: &mut String, track: u32, fiber: u32, start_ns: u64, end_ns: u64, end: &str| {
            out.push(',');
            let _ = write!(out, "{{\"ph\":\"X\",\"pid\":0,\"tid\":{track},\"ts\":");
            push_us(out, start_ns);
            out.push_str(",\"dur\":");
            push_us(out, end_ns.saturating_sub(start_ns));
            let _ = write!(
                out,
                ",\"name\":\"fiber {fiber}\",\"args\":{{\"fiber\":{fiber},\"end\":\"{end}\"}}}}"
            );
        };
    for te in events {
        let ns = te.at.as_nanos();
        let track = track_of(&te.ev);
        match te.ev {
            Event::SwitchBegin { fiber, .. } => {
                open_switch[track as usize] = Some((fiber, ns));
            }
            Event::TaskStart { fiber, .. } => {
                if let Some((old_fiber, start_ns)) = open[track as usize].take() {
                    close_slice(&mut out, track, old_fiber, start_ns, ns, "truncated");
                }
                if let Some((sw_fiber, sw_ns)) = open_switch[track as usize].take() {
                    out.push(',');
                    let _ = write!(out, "{{\"ph\":\"X\",\"pid\":0,\"tid\":{track},\"ts\":");
                    push_us(&mut out, sw_ns);
                    out.push_str(",\"dur\":");
                    push_us(&mut out, ns.saturating_sub(sw_ns));
                    let _ = write!(
                        out,
                        ",\"name\":\"switch\",\"args\":{{\"fiber\":{sw_fiber}}}}}"
                    );
                }
                open[track as usize] = Some((fiber, ns));
            }
            Event::Preempt { fiber, .. } => {
                if let Some((open_fiber, start_ns)) = open[track as usize].take() {
                    let end = if open_fiber == fiber { "preempt" } else { "truncated" };
                    close_slice(&mut out, track, open_fiber, start_ns, ns, end);
                }
            }
            Event::TaskFinish { fiber, .. } => {
                if let Some((open_fiber, start_ns)) = open[track as usize].take() {
                    let end = if open_fiber == fiber { "finish" } else { "truncated" };
                    close_slice(&mut out, track, open_fiber, start_ns, ns, end);
                }
            }
            ref ev => {
                out.push(',');
                let _ = write!(out, "{{\"ph\":\"i\",\"pid\":0,\"tid\":{track},\"ts\":");
                push_us(&mut out, ns);
                let _ = write!(out, ",\"s\":\"t\",\"name\":\"{}\"}}", ev.name());
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn te(ns: u64, ev: Event) -> TimedEvent {
        TimedEvent { at: SimTime::from_nanos(ns), ev }
    }

    #[test]
    fn empty_window_is_a_valid_document() {
        let json = chrome_trace(&[]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"process_name\""));
    }

    #[test]
    fn switch_window_becomes_a_switch_slice() {
        let events = [
            te(1_000, Event::SwitchBegin { worker: 0, fiber: 4, resumed: false }),
            te(1_650, Event::TaskStart { worker: 0, fiber: 4, resumed: false, switch_ns: 650 }),
            te(3_650, Event::TaskFinish { worker: 0, fiber: 4, latency_ns: 2_650 }),
        ];
        let json = chrome_trace(&events);
        assert!(
            json.contains(
                "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1.000,\"dur\":0.650,\
                 \"name\":\"switch\",\"args\":{\"fiber\":4}}"
            ),
            "{json}"
        );
        // The execution slice still starts at the task_start instant.
        assert!(json.contains("\"ts\":1.650,\"dur\":2.000"), "{json}");
        // A switch window left open at the end of the capture is dropped.
        let open = chrome_trace(&[te(9_000, Event::SwitchBegin {
            worker: 0,
            fiber: 9,
            resumed: true,
        })]);
        assert!(!open.contains("switch\""), "{open}");
    }

    #[test]
    fn span_pairs_become_duration_slices() {
        let events = [
            te(1_000, Event::Arrival { class: 0 }),
            te(1_500, Event::TaskStart { worker: 2, fiber: 7, resumed: false, switch_ns: 0 }),
            te(11_500, Event::Preempt { worker: 2, fiber: 7, ran_ns: 10_000 }),
            te(20_000, Event::TaskStart { worker: 2, fiber: 7, resumed: true, switch_ns: 0 }),
            te(25_000, Event::TaskFinish { worker: 2, fiber: 7, latency_ns: 24_000 }),
        ];
        let json = chrome_trace(&events);
        // Two slices on worker 2's track (tid 3), µs timestamps.
        assert!(
            json.contains(
                "{\"ph\":\"X\",\"pid\":0,\"tid\":3,\"ts\":1.500,\"dur\":10.000,\
                 \"name\":\"fiber 7\",\"args\":{\"fiber\":7,\"end\":\"preempt\"}}"
            ),
            "{json}"
        );
        assert!(json.contains("\"ts\":20.000,\"dur\":5.000"), "{json}");
        assert!(json.contains("\"end\":\"finish\""), "{json}");
        // The arrival renders as an instant on track 0.
        assert!(
            json.contains("{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":1.000,\"s\":\"t\",\"name\":\"arrival\"}"),
            "{json}"
        );
        // Worker track got named.
        assert!(json.contains("{\"args\":{\"name\":\"worker 2\"}}".trim_start_matches('{')), "{json}");
    }

    #[test]
    fn unclosed_and_truncated_slices_are_handled() {
        let events = [
            te(0, Event::TaskStart { worker: 0, fiber: 1, resumed: false, switch_ns: 0 }),
            // A second start without a close truncates the first.
            te(500, Event::TaskStart { worker: 0, fiber: 2, resumed: false, switch_ns: 0 }),
            // Fiber 2's slice never closes: dropped.
        ];
        let json = chrome_trace(&events);
        assert!(json.contains("\"end\":\"truncated\""), "{json}");
        assert!(!json.contains("\"fiber\":2,"), "{json}");
    }

    #[test]
    fn output_is_byte_stable() {
        let events = [
            te(100, Event::TaskStart { worker: 1, fiber: 3, resumed: false, switch_ns: 0 }),
            te(900, Event::TaskFinish { worker: 1, fiber: 3, latency_ns: 900 }),
            te(950, Event::TimerPoll { expired: 1 }),
        ];
        assert_eq!(chrome_trace(&events), chrome_trace(&events));
    }
}
