//! The hierarchical timing-wheel core shared by [`crate::EventQueue`]
//! (and, through it, LibUtimer's `TimingWheel`): slab-allocated event
//! nodes filed into cascading wheel levels, with a packed-`u128` binary
//! heap as the far-future overflow.
//!
//! # Geometry
//!
//! Four levels of 1024 slots each, at a 1 ns tick, filed by *shared
//! parent window*: an event lands at the lowest level `L` whose
//! enclosing `1024^(L+1)`-aligned window it shares with the cursor
//! (computed as one XOR + `leading_zeros` of `time ^ now`). Events
//! outside the cursor's `2^40` ns aligned block go to the overflow
//! heap. A flat bitmap keeps one occupancy bit per bucket.
//!
//! The wide radix is a deliberate trade: a 64-slot wheel needs seven
//! levels to span the same `2^40` ns horizon, so an event cascades
//! through nearly twice the levels on its way down (the dominant
//! drain cost — each refile is a dependent pointer chase). At 1024
//! slots the first *two* levels already cover a megatick (~1 ms), so
//! microsecond-scale event spreads — the common simulation regime —
//! pay at most one refile per event, and steady drains usually find
//! level 0 occupied and skip the advance machinery entirely. The
//! price is a 512-byte occupancy bitmap and a 16 KiB bucket-head
//! table instead of tens of bytes of each — cold slots, hot words.
//!
//! Same-parent filing buys a strict stratification the classic
//! delta-magnitude rule lacks: every level-0 entry precedes every
//! level-1 entry, which precedes every level-2 entry, and the whole
//! wheel precedes the whole heap. Within a level, slots are disjoint
//! consecutive windows and never wrap past the cursor. The earliest
//! live event is therefore always in the *lowest nonempty level's
//! first occupied bucket* — one `trailing_zeros`, no candidate floors,
//! no cross-level tie-breaking, no lap aliasing.
//!
//! # Determinism
//!
//! The total order is `(time, seq)` with `seq` monotonic across the
//! queue's whole life — exactly the packed-`u128` key the old heap
//! used — and [`TimerWheel::pop`] always returns the globally smallest
//! live entry under it. The wheel can afford to keep only the `u64`
//! time per node because equal times are always *co-bucketed* (filing
//! depends only on the time and the cursor, and cascades keep it
//! current) and every bucket append — push, cascade, overflow pull —
//! happens in ascending `seq` among equal times. List order inside a
//! bucket therefore *is* seq order, ties across buckets cannot exist,
//! and strict `<` scans (first hit wins) recover the exact `(time,
//! seq)` minimum. The overflow heap, which has no list order, keeps
//! the full packed key; heap entries are born in `push` alone (a
//! cascade or pull never refiles outward, see [`TimerWheel::file`]),
//! where the sequence number is still at hand. The pop order is
//! *identical* to the pure-heap implementation: byte-for-byte the same
//! figures, traces, and leaderboards (pinned by
//! `tests/determinism.rs`, the wheel-vs-naive proptest oracle, and the
//! `wheel_oracle` differential fuzzer).
//!
//! The one wrinkle is past-time pushes (times at or before the
//! cursor): they clamp *placement* into the cursor's own level-0
//! bucket while keeping the real time, so that bucket alone may mix
//! ticks. A `mixed` flag marks it; the minimum scan walks that one
//! bucket exactly, and everywhere else trusts bucket heads.
//!
//! # Cost model
//!
//! * `push`: freelist slab alloc + XOR/`leading_zeros` level pick + a
//!   tail append — O(1), no per-event allocation after warm-up.
//! * `cancel`: generation compare + intrusive unlink — O(1) even when
//!   the cancelled event *was* the cached minimum: a same-tick sibling
//!   takes over in place, or the cache degrades to a lazy lower bound
//!   that the next pop or peek resolves — the arm → cancel → re-arm
//!   loop never rescans occupancy.
//! * `pop`: unlink + an amortized minimum refresh: one advance to the
//!   first occupied bucket's window start cascades exactly that
//!   bucket, and the refile pass itself tracks the new minimum. A
//!   node refiles at most once per level over its whole life, so pops
//!   are amortized O(1).
//!
//! The cursor is allowed to run *ahead* of the last popped time, up to
//! (never past) the earliest live event, which is what lets the
//! minimum refresh cascade coarse buckets eagerly instead of walking
//! windows in place. Correctness does not depend on where the cursor
//! sits: times are exact, and a push behind the cursor takes the
//! clamped-placement path above.
//!
//! # Layout
//!
//! Per-node state is split by temperature: the 16-byte [`Link`]
//! records (time + list links — exactly what cascades touch) pack four
//! per cache line in one slab; the residency/generation word and the
//! payload fuse into one parallel [`Cold`] record, so the
//! random-index accesses of a pop or cancel land on one cold cache
//! line per node instead of two. A wheel node's bucket
//! is never stored — it is derived from `(now, time)`, which cascades
//! keep exact. The cursor, cached minimum, and occupancy bitmap share
//! one 64-byte aligned [`Hot`] block.

use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// log2 of the per-level slot count.
const SLOT_BITS: u32 = 10;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels below the overflow heap.
const LEVELS: usize = 4;
/// Total bucket count across all levels.
const BUCKETS: usize = LEVELS * SLOTS;
/// `u64` words in the flat per-bucket occupancy bitmap.
const OCC_WORDS: usize = BUCKETS / 64;
/// `OCC_WORDS` per single level.
const LEVEL_WORDS: usize = SLOTS / 64;
/// Span of one top-level aligned block: `1024^4 = 2^40` ns (≈ 18 min).
/// Events outside the cursor's block overflow to the heap; a cursor at
/// a block start therefore keeps the next `HORIZON` ns on the wheel.
pub(crate) const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Null link in the intrusive bucket lists and the freelist.
const NIL: u32 = u32::MAX;

/// Residency tag (low bits of a node's `meta` word): in a wheel bucket.
const TAG_WHEEL: u32 = 0;
/// Residency tag: in the overflow heap.
const TAG_HEAP: u32 = 1;
/// Residency tag: on the freelist.
const TAG_FREE: u32 = 2;
/// Mask selecting the residency tag inside a `meta` word; the
/// generation lives in the bits above ([`GEN_ONE`] is one bump).
const TAG_MASK: u32 = 3;
/// The generation increment: one free, expressed in `meta` units.
const GEN_ONE: u32 = 4;

/// The hot half of a slab node: exactly what the wheel machinery reads
/// while filing and cascading. 16 bytes — four per cache line, never
/// straddling one — so a cascade touches a single dense line per
/// refile and drags no payload, no sequence word, and no bookkeeping
/// through the cache. A wheel node's *bucket* is not stored either: it
/// is a pure function of `(now, time)` (cascades refile exactly the
/// buckets whose mapping a cursor move changes, so the mapping is
/// always current), and the residency/generation bookkeeping — written
/// only at push and free, never on a refile — lives in the parallel
/// [`Cold`] slab. Wheel residents sit on a circular doubly-linked bucket list
/// (`head.prev` is the tail, giving O(1) tail appends); freed nodes
/// thread the freelist through `next`.
struct Link {
    /// The event's timestamp in ns. Seq order among equal times is the
    /// bucket list order.
    time: u64,
    /// Intrusive circular bucket list (freelist reuses `next`).
    prev: u32,
    next: u32,
}

/// The cold half of a slab node: the residency/generation word and the
/// event payload, parallel to [`Link`]. Fused into one record so the
/// random-index accesses a pop or cancel makes — liveness check,
/// payload take, generation bump — land on a single cache line per
/// node instead of one line per array. Cascades never touch this.
struct Cold<E> {
    /// Generation (upper 30 bits — a handle is live iff its generation
    /// matches) packed with the residency tag (low 2 bits). One load
    /// answers both "is this handle stale?" and "wheel, heap, or
    /// free?"; one add retires the node. Written only at
    /// push/free/heap-migrate.
    meta: u32,
    /// The payload; `None` while the node is free (destructor-free
    /// payloads may linger, see [`TimerWheel::drop_event`]).
    event: Option<E>,
}

/// An overflow-heap entry: the full `(time << 64) | seq` key (the heap
/// has no list order to lean on) plus enough to validate liveness
/// against the slab without touching the payload.
struct HeapEntry {
    key: u128,
    node: u32,
    gen: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key surfaces.
        other.key.cmp(&self.key)
    }
}

/// A cached reference to the wheel-resident minimum, in one of two
/// states keyed off `node`:
///
/// * `node != NIL`: *exact* — `node` is the earliest live wheel
///   resident (lowest seq among equal times) and `bucket` is where it
///   sits, so a pop (or a cancel of the minimum) unlinks without
///   re-deriving the filing map.
/// * `node == NIL`: *lazy* — no node is cached, but `time` is a
///   certified lower bound on every live wheel time (`u64::MAX` when
///   the wheel part is known empty). Cancelling the minimum leaves
///   this state behind instead of rescanning: the next pop (or a
///   `&self` peek) resolves it, and a push strictly below the bound
///   restores exactness for free. This is what makes the arm → cancel
///   → re-arm loop O(1) per cycle with no occupancy scan at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Min {
    time: u64,
    node: u32,
    bucket: u16,
}

/// The lazy state with a vacuous bound — the initial state and the
/// result of a refresh that found the wheel part empty. (A `u64::MAX`
/// *time* is a legal timestamp; only the [`NIL`] node marks the state.)
const NO_MIN: Min = Min {
    time: u64::MAX,
    node: NIL,
    bucket: 0,
};

/// The cursor cacheline: everything the per-event hot path reads
/// first, aligned so it never false-shares with the slab or bucket
/// tables. The cursor, cached minimum, and last-armed cache lead the
/// first 64-byte line; the occupancy bitmap (64 words, indexed flat
/// by bucket) follows.
#[repr(align(64))]
struct Hot {
    /// The cursor tick. Monotone; may run ahead of the last popped
    /// time but never past the earliest live event (see module docs).
    now: u64,
    /// The cached wheel minimum — exact or a lazy lower bound, see
    /// [`Min`]. Because the heap holds only future blocks, an exact
    /// `wmin` is the *global* minimum.
    wmin: Min,
    /// The most recently pushed wheel resident and the bucket it was
    /// filed into — the arm → cancel → re-arm loop always cancels
    /// exactly this node, and the cached bucket saves re-deriving the
    /// filing map. Sound because only a cursor move (which clears
    /// this) re-files residents, and a freed node is unreachable
    /// through any handle until a re-push — which overwrites this.
    cand: Min,
    /// Set when past-time pushes clamped into the cursor's level-0
    /// bucket, which then mixes ticks and needs a real walk (the only
    /// bucket that ever does). Cleared whenever the cursor moves: a
    /// clamped entry is always the minimum, so the cursor cannot pass
    /// one while it lives.
    mixed: bool,
    /// One occupancy bit per bucket, indexed `bucket / 64`:`bucket %
    /// 64` — level `L` owns words `16L..16L+16`. Stratification keeps
    /// every set bit at or beyond the cursor's slot, so the nearest
    /// occupied slot in a level is the first set bit of its words.
    occ: [u64; OCC_WORDS],
}

/// The shared wheel engine. `EventQueue` is a thin facade over this;
/// see the module docs for geometry, cost model, and the determinism
/// argument.
pub(crate) struct TimerWheel<E> {
    hot: Hot,
    /// Head node index per bucket, indexed `level * 1024 + slot`.
    buckets: [u32; BUCKETS],
    /// The hot node slab. Grows only when the freelist is empty.
    links: Vec<Link>,
    /// The cold node slab, parallel to `links`: residency/generation
    /// word fused with the payload (see [`Cold`]); touched only at
    /// push/cancel/pop, never by cascades.
    cold: Vec<Cold<E>>,
    /// Head of the freelist threaded through `Link::next`.
    free_head: u32,
    /// Far-future overflow, min-key at the top. Invariants: the top is
    /// always live (dead tops are drained by the op that killed them),
    /// and every entry's time lies in a block strictly after `now`'s.
    heap: BinaryHeap<HeapEntry>,
    /// Cancelled entries still buried in the heap.
    heap_dead: usize,
    /// Live (scheduled, not cancelled, not fired) events.
    live: usize,
    /// Monotonic insertion sequence — the tie-break half of the total
    /// order. Only heap entries materialize it; on the wheel it is
    /// implied by bucket list order.
    next_seq: u64,
}

impl<E> fmt::Debug for TimerWheel<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimerWheel")
            .field("now", &self.hot.now)
            .field("live", &self.live)
            .field("slab", &self.links.len())
            .field("heap", &self.heap.len())
            .finish()
    }
}

/// The bucket (as `level * 1024 + slot`) for an event at tick `eff`
/// under same-parent-window filing. The caller must have established
/// `now ^ eff < HORIZON` (same aligned `2^40` block) and `eff >= now`.
#[inline]
fn wheel_bucket(now: u64, eff: u64) -> u16 {
    let x = now ^ eff;
    debug_assert!(x < HORIZON, "filing outside the cursor's block");
    // Highest differing bit picks the lowest level whose parent window
    // both ticks share; `| 1` makes the same-tick case level 0, slot
    // `now & 1023`, branch-free.
    let level = (63 - (x | 1).leading_zeros()) / SLOT_BITS;
    let slot = (eff >> (SLOT_BITS * level)) & (SLOTS as u64 - 1);
    (level as u16) << SLOT_BITS | slot as u16
}

impl<E> TimerWheel<E> {
    /// An empty wheel with the slab (and overflow heap) pre-sized for
    /// `capacity` concurrently scheduled events.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        TimerWheel {
            hot: Hot {
                now: 0,
                wmin: NO_MIN,
                cand: NO_MIN,
                mixed: false,
                occ: [0; OCC_WORDS],
            },
            buckets: [NIL; BUCKETS],
            links: Vec::with_capacity(capacity),
            cold: Vec::with_capacity(capacity),
            free_head: NIL,
            heap: BinaryHeap::with_capacity(capacity),
            heap_dead: 0,
            live: 0,
            next_seq: 0,
        }
    }

    /// Live (scheduled, not cancelled) events. O(1).
    pub(crate) fn live_len(&self) -> usize {
        self.live
    }

    /// Live events plus not-yet-drained cancelled heap entries — an
    /// upper bound on tracked entries, mirroring the old heap's lazy
    /// count.
    pub(crate) fn len_upper_bound(&self) -> usize {
        self.live + self.heap_dead
    }

    /// Slab length: the high-water mark of concurrently scheduled
    /// events (freed nodes are reused, never released).
    pub(crate) fn slab_len(&self) -> usize {
        self.links.len()
    }

    /// `true` when no live events remain. O(1), non-mutating.
    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The timestamp of the earliest live event. Non-mutating: an
    /// exact cached minimum answers directly (it precedes everything
    /// in the heap by the block invariant); a lazy cache falls back to
    /// a read-only scan — stratification puts the wheel minimum in the
    /// lowest nonempty level's first occupied bucket, walked in place
    /// without moving the cursor — and only an empty wheel consults
    /// the (kept-live) heap top.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        if self.hot.wmin.node != NIL {
            return Some(SimTime::from_nanos(self.hot.wmin.time));
        }
        for level in 0..LEVELS {
            let Some(slot) = self.first_occupied(level) else {
                continue;
            };
            let bi = level << SLOT_BITS | slot;
            let head = self.buckets[bi];
            // Level-0 buckets hold a single tick (unless tick-mixing,
            // which only the cursor's own bucket can be), so the head
            // answers; coarser buckets span many ticks and need the
            // walk. Slot order within a level is time order, so the
            // first occupied bucket of the lowest level is the one.
            if level == 0 && !(self.hot.mixed && slot as u64 == self.hot.now & (SLOTS as u64 - 1)) {
                return Some(SimTime::from_nanos(self.links[head as usize].time));
            }
            let mut best = self.links[head as usize].time;
            let mut cur = self.links[head as usize].next;
            while cur != head {
                let n = &self.links[cur as usize];
                if n.time < best {
                    best = n.time;
                }
                cur = n.next;
            }
            return Some(SimTime::from_nanos(best));
        }
        let top = self.heap.peek()?;
        Some(SimTime::from_nanos((top.key >> 64) as u64))
    }

    /// Schedules `event` at `time`; returns the `(node, generation)`
    /// pair the caller packs into its handle type.
    pub(crate) fn push(&mut self, time: SimTime, event: E) -> (u32, u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = time.as_nanos();
        let (node, gen) = self.alloc(t, event);
        self.live += 1;
        let now = self.hot.now;
        let b = if t < now {
            // Behind the cursor: clamp placement into the cursor's own
            // level-0 bucket (keeping the real time) and mark it
            // tick-mixing.
            self.hot.mixed = true;
            (now & (SLOTS as u64 - 1)) as u16
        } else if (t ^ now) < HORIZON {
            wheel_bucket(now, t)
        } else {
            // Far future: overflow to the heap with the full packed
            // key. This is the only place heap entries are born, which
            // is why the slab never has to store `seq`. Heap residents
            // never beat the cached wheel minimum.
            self.cold[node as usize].meta = gen << 2 | TAG_HEAP;
            let key = ((t as u128) << 64) | seq as u128;
            self.heap.push(HeapEntry { key, node, gen });
            return (node, gen);
        };
        self.link_tail(node, b);
        self.hot.cand = Min {
            time: t,
            node,
            bucket: b,
        };
        // Strict `<`: an equal-time push has a higher seq and must not
        // steal the minimum. The same compare re-arms a *lazy* cache —
        // `wmin.time` is then a lower bound on every resident, so a
        // strictly smaller push is the unique new minimum. (A
        // `u64::MAX` push into an empty wheel stays lazy; peek's scan
        // finds it.)
        if t < self.hot.wmin.time {
            self.hot.wmin = Min {
                time: t,
                node,
                bucket: b,
            };
        }
        (node, gen)
    }

    /// Cancels the event owning `(node, gen)`; a stale pair (already
    /// fired or cancelled) is a no-op. O(1) unconditionally: even when
    /// the cached minimum itself dies there is no rescan — a same-tick
    /// sibling takes over in place when one exists, and otherwise the
    /// cache degrades to a lazy lower bound (see [`Min`]) that the
    /// next pop or peek resolves. Heap residents die by generation
    /// bump and drain lazily.
    pub(crate) fn cancel(&mut self, node: u32, gen: u32) {
        let Some(c) = self.cold.get(node as usize) else {
            return;
        };
        let m = c.meta;
        if m >> 2 != gen {
            return;
        }
        let tag = m & TAG_MASK;
        if tag == TAG_WHEEL {
            if self.hot.wmin.node == node {
                let Min { time, bucket, .. } = self.hot.wmin;
                self.unlink(node, bucket as usize);
                self.drop_event(node);
                self.free(node, m);
                self.live -= 1;
                self.hot.wmin = self.succeed_min(time, bucket);
            } else if self.hot.cand.node == node {
                // The most recently armed event — the cancel the
                // re-arm loop issues every cycle. Its bucket was
                // cached at push and no cursor move invalidated it.
                let bi = self.hot.cand.bucket as usize;
                self.hot.cand.node = NIL;
                self.unlink(node, bi);
                self.drop_event(node);
                self.free(node, m);
                self.live -= 1;
            } else {
                let bi = self.resident_bucket(node);
                self.unlink(node, bi);
                self.drop_event(node);
                self.free(node, m);
                self.live -= 1;
            }
        } else if tag == TAG_HEAP {
            self.heap_dead += 1;
            self.drop_event(node);
            self.free(node, m);
            self.drain_dead_heap_top();
            self.live -= 1;
        }
        // TAG_FREE: the handle generation matched a freed node mid-wrap;
        // treat as stale.
    }

    /// Removes and returns the earliest live event and restores an
    /// exact cached minimum — in place when a same-tick sibling
    /// remains, otherwise by a refresh (advancing the cursor only as
    /// far as the next live event requires).
    pub(crate) fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.live == 0 {
            return None;
        }
        if self.hot.wmin.node == NIL {
            // Lazy after a cancelled minimum, or every live event sits
            // in the overflow heap: recompute (the heap case advances
            // into the earliest occupied block, migrating it in).
            self.refresh_min();
        }
        let m = self.hot.wmin;
        debug_assert_ne!(m.node, NIL, "live events imply a wheel minimum");
        self.unlink(m.node, m.bucket as usize);
        let c = &mut self.cold[m.node as usize];
        let meta = c.meta;
        let event = c.event.take().expect("live node holds its event");
        self.free(m.node, meta);
        self.live -= 1;
        let next = self.succeed_min(m.time, m.bucket);
        if next.node != NIL {
            self.hot.wmin = next;
        } else {
            // The popped event was the global minimum, so the cursor
            // may legally catch up to its tick — which starts the
            // refresh's occupancy scans at the popped slot's word
            // instead of rescanning the drained words behind it. (A
            // live clamped entry would itself be the minimum, so
            // `m.time <= now` then and this is a no-op that keeps
            // `mixed` set.)
            self.advance_to(m.time);
            self.refresh_min();
        }
        Some((SimTime::from_nanos(m.time), event))
    }

    // -- slab ---------------------------------------------------------

    /// Allocates a slab node holding `(time, event)` with a
    /// [`TAG_WHEEL`] residency (the far-future push path retags) and
    /// returns its generation.
    #[inline]
    fn alloc(&mut self, time: u64, event: E) -> (u32, u32) {
        if self.free_head != NIL {
            let node = self.free_head;
            let link = &mut self.links[node as usize];
            self.free_head = link.next;
            link.time = time;
            let c = &mut self.cold[node as usize];
            c.meta &= !TAG_MASK; // TAG_FREE -> TAG_WHEEL, generation kept
            let gen = c.meta >> 2;
            c.event = Some(event);
            (node, gen)
        } else {
            // The slab's only growth point: cold after warm-up (the
            // freelist feeds steady-state re-arm loops) and amortized
            // away entirely by `with_capacity` pre-sizing.
            let node = self.links.len() as u32;
            self.links.push(Link {
                time,
                prev: NIL,
                next: NIL,
            });
            self.cold.push(Cold {
                meta: TAG_WHEEL,
                event: Some(event),
            });
            (node, 0)
        }
    }

    /// Releases a cancelled node's payload. Skipped entirely when `E`
    /// has no destructor: liveness is the meta generation, the stale
    /// value is unreachable through any handle, and the slot is
    /// overwritten at reuse — the only observable effect of clearing
    /// would be running `E::drop` early, which destructor-free types
    /// don't have. `Box`ed payloads and the like still release at
    /// cancel time.
    #[inline]
    fn drop_event(&mut self, node: u32) {
        if std::mem::needs_drop::<E>() {
            self.cold[node as usize].event = None;
        }
    }

    /// Returns a node (whose payload the caller already dropped or
    /// took) to the freelist. `m` is the node's current meta word —
    /// every caller just read it for a liveness check, so the
    /// generation bump is a pure store with no dependent reload.
    #[inline]
    fn free(&mut self, node: u32, m: u32) {
        // The generation bump is what retires every outstanding handle
        // (and any buried heap entry) in one compare. Wrapping: after
        // 2^30 reuses a handle may alias, the same contract as the old
        // slot table (scaled by the two tag bits).
        self.cold[node as usize].meta = (m & !TAG_MASK).wrapping_add(GEN_ONE) | TAG_FREE;
        self.links[node as usize].next = self.free_head;
        self.free_head = node;
    }

    // -- wheel filing -------------------------------------------------

    /// Refiles a node during a cascade or an overflow pull. Both stay
    /// inside the cursor's block — a cascaded bucket shares the old
    /// block and the cursor only moves within it here, and a pull
    /// stops at the block edge — so this never files outward to the
    /// heap (which would need a sequence number the slab doesn't
    /// carry). Tracks the minimum across the refile pass in-line: the
    /// refresh seeds `wmin` with the sentinel and a single advance
    /// leaves the exact new minimum behind, no separate bucket walk
    /// needed. (Strict `<` keeps the first equal-time node seen, which
    /// list order guarantees is the lowest seq.)
    #[inline]
    fn file(&mut self, node: u32) {
        let t = self.links[node as usize].time;
        debug_assert!(t >= self.hot.now, "refiled node behind the cursor");
        let b = wheel_bucket(self.hot.now, t);
        self.link_tail(node, b);
        if t < self.hot.wmin.time || self.hot.wmin.node == NIL {
            self.hot.wmin = Min {
                time: t,
                node,
                bucket: b,
            };
        }
    }

    /// Appends `node` at the tail of bucket `b`, preserving the
    /// sequence order that makes unmixed bucket heads minima.
    #[inline]
    fn link_tail(&mut self, node: u32, b: u16) {
        debug_assert!((b as usize) < BUCKETS);
        // The mask is a no-op (every caller files in range, asserted
        // above) but makes the index provably in-bounds, keeping panic
        // branches out of the hottest loops.
        let bi = b as usize & (BUCKETS - 1);
        let head = self.buckets[bi];
        if head == NIL {
            self.links[node as usize].prev = node;
            self.links[node as usize].next = node;
            self.buckets[bi] = node;
            self.hot.occ[bi >> 6] |= 1u64 << (bi & 63);
        } else {
            let tail = self.links[head as usize].prev;
            self.links[node as usize].prev = tail;
            self.links[node as usize].next = head;
            self.links[tail as usize].next = node;
            self.links[head as usize].prev = node;
        }
    }

    /// The bucket a wheel-resident node currently sits in, *derived*
    /// rather than stored: for a clamped node (time behind the cursor)
    /// it is the cursor's own level-0 slot — clamped nodes never
    /// survive a cursor move, so the slot is current — and otherwise
    /// the filing map applies, which cascades keep exact for every
    /// resident (see [`Link`]).
    #[inline]
    fn resident_bucket(&self, node: u32) -> usize {
        let t = self.links[node as usize].time;
        let now = self.hot.now;
        if t < now {
            (now & (SLOTS as u64 - 1)) as usize
        } else {
            wheel_bucket(now, t) as usize
        }
    }

    /// Removes a wheel-resident node from bucket `bi` (the caller
    /// passes the cached minimum's bucket or [`Self::resident_bucket`]).
    #[inline]
    fn unlink(&mut self, node: u32, bi: usize) {
        debug_assert!(bi < BUCKETS);
        let bi = bi & (BUCKETS - 1); // in-bounds proof, see `link_tail`
        debug_assert_eq!(
            self.cold[node as usize].meta & TAG_MASK,
            TAG_WHEEL,
            "unlink of a node not on the wheel"
        );
        debug_assert_eq!(self.resident_bucket(node), bi, "stale bucket handed to unlink");
        let n = &self.links[node as usize];
        let (prev, next) = (n.prev, n.next);
        if next == node {
            self.buckets[bi] = NIL;
            self.hot.occ[bi >> 6] &= !(1u64 << (bi & 63));
        } else {
            self.links[prev as usize].next = next;
            self.links[next as usize].prev = prev;
            if self.buckets[bi] == node {
                self.buckets[bi] = next;
            }
        }
    }

    // -- cursor / cascade ---------------------------------------------

    /// Moves the cursor forward to tick `t` (never backward), cascading
    /// the newly entered window at every level whose window changed and
    /// pulling the overflow heap on a block change.
    ///
    /// Sound only because callers never advance past the earliest live
    /// event, so every window strictly between the old and new cursor
    /// positions is empty, and no live clamped entry exists (it would
    /// *be* that earliest event) — which is why `mixed` resets here.
    fn advance_to(&mut self, t: u64) {
        let old = self.hot.now;
        if t <= old {
            return;
        }
        self.hot.now = t;
        self.hot.mixed = false;
        // A cursor move can re-file any resident, so the last-armed
        // bucket cache is no longer trustworthy.
        self.hot.cand.node = NIL;
        let x = old ^ t;
        let hi = (63 - (x | 1).leading_zeros()) / SLOT_BITS;
        if hi == 0 {
            return;
        }
        // Top-down so entries refile through at most one cascade per
        // advance. A freshly current slot at level L is never a filing
        // target while current (its entries would share a finer
        // window), so cascaded entries are never moved twice.
        for level in (1..=hi.min(LEVELS as u32 - 1)).rev() {
            let shift = SLOT_BITS * level;
            let slot = ((t >> shift) & (SLOTS as u64 - 1)) as usize;
            self.cascade((level as usize) << SLOT_BITS | slot);
        }
        // Block rollover: heap entries of the newly entered block now
        // belong on the wheel.
        if hi >= LEVELS as u32 {
            self.pull_overflow();
        }
    }

    /// Empties bucket `b` — a window that just became current —
    /// refiling every node one or more levels down, in list order so
    /// per-tick sequence order survives.
    fn cascade(&mut self, b: usize) {
        debug_assert!(b < BUCKETS);
        let b = b & (BUCKETS - 1); // in-bounds proof, see `link_tail`
        let head = self.buckets[b];
        if head == NIL {
            return;
        }
        self.buckets[b] = NIL;
        self.hot.occ[b >> 6] &= !(1u64 << (b & 63));
        let mut cur = head;
        loop {
            let next = self.links[cur as usize].next;
            self.file(cur);
            if next == head {
                break;
            }
            cur = next;
        }
    }

    /// Drains heap entries whose time falls inside the cursor's block,
    /// refiling them as wheel nodes in key order (dead entries passed
    /// on the way out are dropped). Node indices and generations are
    /// stable across the move, so outstanding handles stay valid.
    fn pull_overflow(&mut self) {
        loop {
            let Some(top) = self.heap.peek() else { return };
            let (key, node, gen) = (top.key, top.node, top.gen);
            if self.cold[node as usize].meta != gen << 2 | TAG_HEAP {
                self.heap.pop();
                self.heap_dead -= 1;
                continue;
            }
            // Stop at the first entry of a later block (the same
            // predicate filing uses, so a migrated entry can never
            // bounce straight back to the heap).
            let t = (key >> 64) as u64;
            if (t ^ self.hot.now) >= HORIZON {
                return;
            }
            self.heap.pop();
            self.cold[node as usize].meta = gen << 2 | TAG_WHEEL;
            self.file(node);
        }
    }

    /// Re-establishes the "heap top is live" invariant.
    fn drain_dead_heap_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cold[top.node as usize].meta == top.gen << 2 | TAG_HEAP {
                return;
            }
            self.heap.pop();
            self.heap_dead -= 1;
        }
    }

    // -- cached minimum -----------------------------------------------

    /// The cached minimum's successor after its node (time `time`,
    /// bucket `bucket`) was unlinked, without any rescan. If the
    /// bucket still has residents and is a single-tick level-0 bucket,
    /// its new head is the next-lowest seq at the very same tick — the
    /// exact new minimum, since equal times are always co-bucketed and
    /// everything else was `>= time`. Otherwise the exact successor is
    /// unknown and the lazy state carries `time` forward as the lower
    /// bound (the dead minimum bounded every survivor from below).
    #[inline]
    fn succeed_min(&self, time: u64, bucket: u16) -> Min {
        debug_assert!((bucket as usize) < BUCKETS);
        let bi = bucket as usize & (BUCKETS - 1); // in-bounds proof
        let head = self.buckets[bi];
        if head != NIL
            && bi < SLOTS
            && !(self.hot.mixed && bi as u64 == self.hot.now & (SLOTS as u64 - 1))
        {
            debug_assert_eq!(
                self.links[head as usize].time,
                time,
                "level-0 bucket mixes ticks"
            );
            return Min {
                time,
                node: head,
                bucket,
            };
        }
        Min {
            time,
            node: NIL,
            bucket: 0,
        }
    }

    /// Recomputes `wmin` from scratch. By stratification the minimum is
    /// the head of the first occupied level-0 bucket when one exists
    /// (walked only if it is the cursor's own, tick-mixing bucket).
    /// Otherwise the lowest nonempty level's first occupied bucket
    /// holds the minimum, so one advance to that bucket's window start
    /// cascades *exactly that bucket* (every finer level is empty, and
    /// the window start stays at or before the earliest live event);
    /// [`TimerWheel::file`] tracks the minimum of everything the
    /// cascade refiles against the pre-seeded sentinel, leaving the
    /// exact new minimum behind with no separate walk. An empty wheel
    /// pulls the earliest heap block the same way: the pulled block's
    /// minimum is the global minimum and `file` catches it in flight.
    /// First occupied slot of `level`, or `None`. The bitmap words of
    /// a level are scanned low to high; stratification guarantees no
    /// set bit below the cursor's slot, so the first hit is nearest.
    #[inline]
    fn first_occupied(&self, level: usize) -> Option<usize> {
        let base = level * LEVEL_WORDS;
        // Stratification: no set bit exists below the cursor's slot at
        // any level, so the scan starts at the cursor's word.
        let cursor_slot = (self.hot.now >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
        for w in cursor_slot >> 6..LEVEL_WORDS {
            let word = self.hot.occ[base + w];
            if word != 0 {
                return Some(w << 6 | word.trailing_zeros() as usize);
            }
        }
        None
    }

    fn refresh_min(&mut self) {
        if let Some(slot) = self.first_occupied(0) {
            let head = self.buckets[slot];
            if self.hot.mixed && slot as u64 == self.hot.now & (SLOTS as u64 - 1) {
                // The one bucket that can mix ticks: walk it. Strict
                // `<` keeps the first equal-time node, i.e. lowest seq.
                let mut best = Min {
                    time: self.links[head as usize].time,
                    node: head,
                    bucket: slot as u16,
                };
                let mut cur = self.links[head as usize].next;
                while cur != head {
                    let n = &self.links[cur as usize];
                    if n.time < best.time {
                        best = Min {
                            time: n.time,
                            node: cur,
                            bucket: slot as u16,
                        };
                    }
                    cur = n.next;
                }
                self.hot.wmin = best;
            } else {
                self.hot.wmin = Min {
                    time: self.links[head as usize].time,
                    node: head,
                    bucket: slot as u16,
                };
            }
            return;
        }
        self.hot.wmin = NO_MIN;
        for level in 1..LEVELS {
            let Some(slot) = self.first_occupied(level) else {
                continue;
            };
            let slot = slot as u64;
            let shift = SLOT_BITS * level as u32;
            let parent = self.hot.now >> (shift + SLOT_BITS) << (shift + SLOT_BITS);
            let window = parent + (slot << shift);
            debug_assert!(window > self.hot.now, "occupied window behind the cursor");
            self.advance_to(window);
            debug_assert_ne!(self.hot.wmin.node, NIL, "cascade left no minimum");
            return;
        }
        let Some(top) = self.heap.peek() else { return };
        let t = (top.key >> 64) as u64;
        let block = t & !(HORIZON - 1);
        debug_assert!(block > self.hot.now, "heap entry in the cursor's block");
        // Entering the block pulls its entries onto the wheel; `file`
        // tracks their minimum — the heap preceded nothing on the
        // (empty) wheel, so the pulled minimum is the global one.
        self.advance_to(block);
        debug_assert_ne!(self.hot.wmin.node, NIL, "pull left no minimum");
    }

    /// Test hook: forces a slab node's generation so wraparound
    /// aliasing is exercisable without 2^32 real reuses.
    #[cfg(test)]
    pub(crate) fn force_gen(&mut self, node: u32, gen: u32) {
        let m = &mut self.cold[node as usize].meta;
        *m = gen << 2 | (*m & TAG_MASK);
    }

    /// The largest representable generation (the wraparound boundary
    /// of the 30-bit generation field).
    #[cfg(test)]
    pub(crate) const MAX_GEN: u32 = u32::MAX >> 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    fn drain<E>(w: &mut TimerWheel<E>) -> Vec<(u64, E)> {
        let mut out = Vec::with_capacity(w.live_len());
        while let Some((at, e)) = w.pop() {
            out.push((at.as_nanos(), e));
        }
        out
    }

    #[test]
    fn filing_matches_shared_parent_window_geometry() {
        // From a cursor at zero, same-parent filing coincides with the
        // delta-magnitude rule...
        assert_eq!(wheel_bucket(0, 0), 0);
        assert_eq!(wheel_bucket(0, 1_023), 1_023);
        assert_eq!(wheel_bucket(0, 1_024), 1_024 + 1);
        assert_eq!(wheel_bucket(0, 1_048_575), 1_024 + 1_023);
        assert_eq!(wheel_bucket(0, 1_048_576), 2_048 + 1);
        assert_eq!(wheel_bucket(0, HORIZON - 1), 3 * 1_024 + 1_023);
        // ...but window *crossings* file by the shared parent, not the
        // delta: one tick ahead across a level-1 boundary is a level-1
        // placement, never an aliasing level-0 lap.
        assert_eq!(wheel_bucket(1_023, 1_024), 1_024 + 1);
        assert_eq!(wheel_bucket(1_048_575, 1_048_576), 2_048 + 1);
        // Same tick files at the cursor's own level-0 slot.
        assert_eq!(wheel_bucket(1_048_578, 1_048_578), 2);
    }

    #[test]
    fn pops_across_levels_in_key_order() {
        let mut w = TimerWheel::with_capacity(8);
        w.push(t(5), "l0");
        w.push(t(5_000), "l1");
        w.push(t(5_000_000), "l2");
        w.push(t(10_000_000_000), "l3");
        w.push(t(HORIZON + 5), "heap");
        let got = drain(&mut w);
        assert_eq!(got.len(), 5);
        assert_eq!(got[0], (5, "l0"));
        assert_eq!(got[4], (HORIZON + 5, "heap"));
        assert!(w.is_empty());
    }

    #[test]
    fn multi_level_cascade_preserves_order() {
        let mut w = TimerWheel::with_capacity(64);
        // A spread that forces every level to cascade at least once.
        let mut expect = Vec::with_capacity(40);
        for i in 0..40u64 {
            let at = (i * 7919) << (i % 30);
            w.push(t(at), i);
            expect.push((at, i));
        }
        expect.sort_unstable();
        let got = drain(&mut w);
        assert_eq!(got, expect);
    }

    #[test]
    fn past_times_pop_first_with_real_timestamps() {
        let mut w = TimerWheel::with_capacity(4);
        w.push(t(10_000), "future");
        let (_, _) = w.pop().expect("advance the cursor");
        // The cursor sits at 10_000 now; earlier times clamp into its
        // slot but keep their keys.
        w.push(t(3), "ancient");
        w.push(t(7), "old");
        w.push(t(10_500), "next");
        assert_eq!(w.peek_time(), Some(t(3)));
        let got = drain(&mut w);
        assert_eq!(got[0], (3, "ancient"));
        assert_eq!(got[1], (7, "old"));
        assert_eq!(got[2], (10_500, "next"));
    }

    #[test]
    fn generation_wraparound_aliases_exactly_like_the_slot_table() {
        let mut w = TimerWheel::with_capacity(2);
        let (n0, g0) = w.push(t(1), 1u32);
        assert_eq!((n0, g0), (0, 0));
        w.pop().expect("fires");
        w.force_gen(0, TimerWheel::<u32>::MAX_GEN);
        let (n1, g1) = w.push(t(2), 2u32);
        assert_eq!((n1, g1), (0, TimerWheel::<u32>::MAX_GEN));
        w.cancel(n1, g1);
        // The bump wrapped MAX_GEN -> 0: a fresh push reuses generation 0.
        let (n2, g2) = w.push(t(3), 3u32);
        assert_eq!((n2, g2), (0, 0));
        // The retired MAX-generation handle is stale and must no-op...
        w.cancel(n1, g1);
        assert_eq!(w.live_len(), 1);
        // ...while the wrapped handle (aliasing the very first push's
        // (node, gen) pair — the documented 2^32-reuse contract) works.
        w.cancel(n2, g2);
        assert!(w.is_empty());
    }

    #[test]
    fn occupancy_bits_clear_when_buckets_empty() {
        let mut w = TimerWheel::with_capacity(4);
        let (n, g) = w.push(t(5_000), ());
        let level1 = LEVEL_WORDS..2 * LEVEL_WORDS;
        assert!(
            w.hot.occ[level1.clone()].iter().any(|&b| b != 0),
            "tick 5000 crosses a level-1 window"
        );
        w.cancel(n, g);
        assert!(
            w.hot.occ[level1].iter().all(|&b| b == 0),
            "unlink must clear the bit"
        );
        assert!(w.peek_time().is_none());
    }

    #[test]
    fn full_lap_delta_does_not_alias_the_cursor_slot() {
        // Fuzzer-found regression against the original delta-magnitude
        // filing rule: with the cursor deep in top-level territory, a
        // delta just under the horizon could sit a full lap ahead,
        // alias the cursor's own slot, and corrupt the nearest-bucket
        // scan. Same-parent-window filing makes the case structurally
        // impossible (a block crossing overflows to the heap); this
        // pins the fuzzer's exact reproducing sequence, which remains
        // a cross-window ordering probe under any geometry.
        let mut w = TimerWheel::with_capacity(8);
        w.push(t(28_849_308_031), 0u32);
        w.pop().expect("warm-up pop");
        w.push(t(94_676_906_545), 1);
        w.push(t(96_945_396_916), 2);
        w.push(t(62_093_930_542), 3);
        w.push(t(78_257_135_242), 4);
        assert_eq!(w.peek_time(), Some(t(62_093_930_542)));
        let got = drain(&mut w);
        assert_eq!(got[0], (62_093_930_542, 3));
        assert_eq!(got[1], (78_257_135_242, 4));
        assert_eq!(got[2], (94_676_906_545, 1));
        assert_eq!(got[3], (96_945_396_916, 2));
    }

    #[test]
    fn heap_overflow_boundary_is_exact() {
        let mut w = TimerWheel::with_capacity(4);
        w.push(t(HORIZON - 1), "wheel");
        w.push(t(HORIZON), "heap");
        assert_eq!(w.heap.len(), 1, "exactly the next-block event overflows");
        let got = drain(&mut w);
        assert_eq!(got[0], (HORIZON - 1, "wheel"));
        assert_eq!(got[1], (HORIZON, "heap"));
    }

    #[test]
    fn eager_refresh_advance_stays_at_or_before_the_minimum() {
        // The minimum refresh may advance the cursor ahead of the last
        // popped time, but never past the earliest live event — pushes
        // between pops must still land ahead of (or clamp level with)
        // the cursor and pop in exact key order.
        let mut w = TimerWheel::with_capacity(8);
        w.push(t(10), "a");
        let (b, bg) = w.push(t(1_000_000), "b");
        assert_eq!(w.pop().map(|(at, e)| (at.as_nanos(), e)), Some((10, "a")));
        // The refresh advanced the cursor toward b; cancelling the
        // minimum forces another refresh with nothing left.
        w.cancel(b, bg);
        assert!(w.peek_time().is_none());
        // A push behind the advanced cursor still pops with its real
        // timestamp.
        w.push(t(50), "late");
        assert_eq!(w.peek_time(), Some(t(50)));
        assert_eq!(drain(&mut w), [(50, "late")]);
    }

    #[test]
    fn max_time_pushes_do_not_collide_with_the_empty_sentinel() {
        // `u64::MAX` is a legal timestamp; emptiness is keyed off the
        // NIL node, not the time, so such an event must still be
        // peekable and poppable.
        let mut w = TimerWheel::with_capacity(2);
        w.push(t(u64::MAX), "eon");
        assert_eq!(w.peek_time(), Some(t(u64::MAX)));
        assert_eq!(drain(&mut w), [(u64::MAX, "eon")]);
        assert!(w.peek_time().is_none());
    }

    #[test]
    fn hot_links_are_16_bytes() {
        // The hot/cold split contract: cascade state is exactly the
        // u64 time plus the two list links — no u128 key, no payload,
        // no stored bucket, no generation — 16 bytes, four per cache
        // line, never straddling one.
        assert_eq!(std::mem::size_of::<Link>(), 16);
        assert_eq!(std::mem::align_of::<Link>(), 8);
        assert_eq!(std::mem::align_of::<Hot>(), 64);
    }
}
