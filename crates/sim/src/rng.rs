//! Deterministic randomness plumbing.
//!
//! Every stochastic component of the reproduction owns its own
//! [`rand::rngs::SmallRng`], derived from a single experiment seed through
//! [`substream`]. Components never share an RNG, so adding a sampling site
//! to one component cannot perturb another — experiments stay
//! reproducible bit-for-bit across refactors as long as the component
//! stream labels are stable.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives the seed of a named substream from an experiment master seed.
///
/// Uses the splitmix64 finalizer, which is a bijective avalanche function:
/// distinct `(master, stream)` pairs yield well-separated seeds even for
/// small consecutive stream indices.
///
/// ```
/// use lp_sim::rng::substream;
/// assert_ne!(substream(42, 0), substream(42, 1));
/// assert_eq!(substream(42, 7), substream(42, 7));
/// ```
pub fn substream(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a deterministic RNG for the given substream of a master seed.
pub fn rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(substream(master, stream))
}

/// Well-known stream labels so components never collide.
///
/// New components append; existing numbers are frozen to preserve
/// experiment reproducibility.
pub mod streams {
    /// Request inter-arrival sampling.
    pub const ARRIVALS: u64 = 1;
    /// Request service-time sampling.
    pub const SERVICE: u64 = 2;
    /// Hardware latency jitter (interrupt delivery, cache effects).
    pub const HW_JITTER: u64 = 3;
    /// Kernel latency jitter (signals, timers, syscalls).
    pub const KERNEL_JITTER: u64 = 4;
    /// Workload content (keys, value sizes).
    pub const WORKLOAD: u64 = 5;
    /// Background-interference injection.
    pub const INTERFERENCE: u64 = 6;
    /// Load-balancing tie-breaks.
    pub const BALANCE: u64 = 7;
    /// Fault-injection decision sampling (see [`crate::fault`]).
    pub const FAULTS: u64 = 8;
    /// Chaos-adversary plan sampling and search moves (`lp-chaos`).
    pub const CHAOS: u64 = 9;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn substream_is_deterministic() {
        assert_eq!(substream(123, 4), substream(123, 4));
    }

    #[test]
    fn substreams_differ() {
        let a = substream(1, streams::ARRIVALS);
        let b = substream(1, streams::SERVICE);
        let c = substream(2, streams::ARRIVALS);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn rngs_from_same_stream_agree() {
        let mut r1 = rng(99, 3);
        let mut r2 = rng(99, 3);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn consecutive_streams_are_decorrelated() {
        // A crude avalanche check: consecutive stream seeds differ in many
        // bits.
        let x = substream(7, 10);
        let y = substream(7, 11);
        let differing = (x ^ y).count_ones();
        assert!(differing > 16, "only {differing} differing bits");
    }
}
