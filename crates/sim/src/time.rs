//! Simulated time.
//!
//! The whole reproduction runs on a single monotonic clock measured in
//! **nanoseconds** held in a `u64`. Nanosecond resolution is sufficient to
//! resolve the smallest costs in the paper (an fcontext switch is ~40 ns,
//! `SENDUIPI` issue is ~100 ns) while still representing ~584 years of
//! simulated time, far beyond any experiment.
//!
//! Two newtypes keep instants and spans from being confused
//! ([C-NEWTYPE]): [`SimTime`] is a point on the simulation clock and
//! [`SimDur`] is a span between two points.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// ```
/// use lp_sim::{SimTime, SimDur};
/// let t = SimTime::ZERO + SimDur::micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use lp_sim::SimDur;
/// assert_eq!(SimDur::micros(5) / 2, SimDur::nanos(2_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, with fractional part.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, with fractional part.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDur {
        debug_assert!(
            earlier <= self,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDur(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or [`SimDur::ZERO`] if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDur {
    /// The empty span.
    pub const ZERO: SimDur = SimDur(0);
    /// The largest representable span.
    pub const MAX: SimDur = SimDur(u64::MAX);

    /// Creates a span of `n` nanoseconds.
    pub const fn nanos(n: u64) -> Self {
        SimDur(n)
    }

    /// Creates a span of `n` microseconds.
    pub const fn micros(n: u64) -> Self {
        SimDur(n * 1_000)
    }

    /// Creates a span of `n` milliseconds.
    pub const fn millis(n: u64) -> Self {
        SimDur(n * 1_000_000)
    }

    /// Creates a span of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDur(n * 1_000_000_000)
    }

    /// Creates a span from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative values clamp to zero.
    ///
    /// ```
    /// use lp_sim::SimDur;
    /// assert_eq!(SimDur::from_micros_f64(0.5), SimDur::nanos(500));
    /// assert_eq!(SimDur::from_micros_f64(-1.0), SimDur::ZERO);
    /// ```
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 || !us.is_finite() {
            return SimDur::ZERO;
        }
        SimDur((us * 1_000.0).round() as u64)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDur::ZERO;
        }
        SimDur((s * 1_000_000_000.0).round() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// `true` if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Difference that clamps at zero instead of panicking.
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }

    /// Addition that clamps at [`SimDur::MAX`].
    pub fn saturating_add(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_add(other.0))
    }

    /// Multiplies by a non-negative float, rounding to the nearest
    /// nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDur {
        debug_assert!(k >= 0.0, "SimDur::mul_f64: negative factor {k}");
        SimDur::from_micros_f64(self.as_micros_f64() * k)
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDur) -> SimDur {
        SimDur(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDur) -> SimDur {
        SimDur(self.0.max(other.0))
    }

    /// Clamps the span into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: SimDur, hi: SimDur) -> SimDur {
        assert!(lo <= hi, "SimDur::clamp: lo > hi");
        SimDur(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        self.since(rhs)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.checked_add(rhs.0).expect("SimDur overflow"))
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.checked_sub(rhs.0).expect("SimDur underflow"))
    }
}

impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0.checked_mul(rhs).expect("SimDur overflow"))
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl Div for SimDur {
    /// How many times `rhs` fits in `self` (integer division).
    type Output = u64;
    fn div(self, rhs: SimDur) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem for SimDur {
    type Output = SimDur;
    fn rem(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 % rhs.0)
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        iter.fold(SimDur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDur(self.0))
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimDur::micros(1).as_nanos(), 1_000);
        assert_eq!(SimDur::millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDur::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
        assert_eq!(SimDur::secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDur::micros(3).as_micros_f64(), 3.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDur::micros(10);
        assert_eq!((t - SimTime::ZERO).as_nanos(), 10_000);
        assert_eq!(t - SimDur::micros(4), SimTime::from_nanos(6_000));
        assert_eq!(t.since(SimTime::from_nanos(1_000)), SimDur::nanos(9_000));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_nanos(5).saturating_since(SimTime::from_nanos(9)),
            SimDur::ZERO
        );
        assert_eq!(SimTime::MAX.saturating_add(SimDur::secs(1)), SimTime::MAX);
        assert_eq!(
            SimDur::nanos(3).saturating_sub(SimDur::nanos(10)),
            SimDur::ZERO
        );
        assert_eq!(SimDur::MAX.saturating_add(SimDur::nanos(1)), SimDur::MAX);
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimDur::nanos(2);
    }

    #[test]
    fn float_conversions_round_and_clamp() {
        assert_eq!(SimDur::from_micros_f64(1.2345), SimDur::nanos(1_235)); // rounds
        assert_eq!(SimDur::from_micros_f64(f64::NAN), SimDur::ZERO);
        assert_eq!(SimDur::from_micros_f64(-3.0), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(0.25), SimDur::millis(250));
        assert_eq!(SimDur::from_secs_f64(f64::INFINITY), SimDur::ZERO);
    }

    #[test]
    fn dur_arithmetic() {
        assert_eq!(SimDur::micros(4) * 3, SimDur::micros(12));
        assert_eq!(SimDur::micros(9) / 2, SimDur::nanos(4_500));
        assert_eq!(SimDur::micros(10) / SimDur::micros(3), 3);
        assert_eq!(SimDur::micros(10) % SimDur::micros(3), SimDur::micros(1));
        assert_eq!(SimDur::micros(5).mul_f64(0.5), SimDur::nanos(2_500));
        let total: SimDur = [SimDur::micros(1), SimDur::micros(2)].into_iter().sum();
        assert_eq!(total, SimDur::micros(3));
    }

    #[test]
    fn clamp_min_max() {
        let d = SimDur::micros(7);
        assert_eq!(d.clamp(SimDur::micros(1), SimDur::micros(5)), SimDur::micros(5));
        assert_eq!(d.clamp(SimDur::micros(10), SimDur::micros(20)), SimDur::micros(10));
        assert_eq!(d.min(SimDur::micros(3)), SimDur::micros(3));
        assert_eq!(d.max(SimDur::micros(3)), d);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDur::nanos(17).to_string(), "17ns");
        assert_eq!(SimDur::micros(2).to_string(), "2.000us");
        assert_eq!(SimDur::millis(3).to_string(), "3.000ms");
        assert_eq!(SimDur::secs(4).to_string(), "4.000s");
        assert_eq!(SimDur::MAX.to_string(), "inf");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500us");
    }
}
