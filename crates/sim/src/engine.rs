//! The simulation executor.
//!
//! A [`Simulation`] owns a model and an [`EventQueue`] and repeatedly pops
//! the earliest event, advances the clock, and hands the event to the
//! model. The model schedules follow-up events through the [`Ctx`] it is
//! given — it never touches the queue directly, which keeps causality
//! (events can only be scheduled at or after the current instant) enforced
//! in one place.

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDur, SimTime};

/// A simulated system: the single event handler of a simulation.
///
/// Implementations are state machines over their own `Event` type. See the
/// crate docs for a complete example.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handles one event at the instant `ctx.now()`.
    fn handle(&mut self, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>);
}

/// Scheduling context handed to [`Model::handle`].
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
}

impl<E> Ctx<'_, E> {
    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — simulated causality violations
    /// are always bugs.
    pub fn at(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "scheduling into the past: {} < {}",
            time,
            self.now
        );
        self.queue.push(time, event)
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn after(&mut self, delay: SimDur, event: E) -> EventId {
        self.queue.push(self.now + delay, event)
    }

    /// Schedules `event` at the current instant (fires after all events
    /// already scheduled for this instant).
    pub fn immediately(&mut self, event: E) -> EventId {
        self.queue.push(self.now, event)
    }

    /// Cancels a previously scheduled event. No-op if it already fired.
    pub fn cancel(&mut self, id: EventId) {
        self.queue.cancel(id)
    }

    /// Requests the simulation to stop after the current event returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A discrete-event simulation over a [`Model`].
///
/// ```
/// use lp_sim::{Ctx, Model, SimDur, Simulation};
///
/// /// Counts down `n` ticks, one per microsecond.
/// struct Countdown {
///     n: u32,
/// }
/// enum Ev {
///     Tick,
/// }
/// impl Model for Countdown {
///     type Event = Ev;
///     fn handle(&mut self, _ev: Ev, ctx: &mut Ctx<'_, Ev>) {
///         self.n -= 1;
///         if self.n > 0 {
///             ctx.after(SimDur::micros(1), Ev::Tick);
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Countdown { n: 3 });
/// sim.schedule_after(SimDur::ZERO, Ev::Tick);
/// sim.run();
/// assert_eq!(sim.model().n, 0);
/// assert_eq!(sim.now().as_nanos(), 2_000);
/// ```
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    stop: bool,
    events_processed: u64,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation at time zero around `model`.
    pub fn new(model: M) -> Self {
        Self::with_capacity(model, 0)
    }

    /// Creates a simulation whose event queue is pre-sized for
    /// `capacity` concurrently scheduled events (see
    /// [`EventQueue::with_capacity`]). Runtimes derive the hint from
    /// their offered arrival rate so the wheel's node slab reaches
    /// steady state during warm-up and never grows mid-run.
    pub fn with_capacity(model: M, capacity: usize) -> Self {
        Simulation {
            model,
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            stop: false,
            events_processed: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (for configuration between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation and returns the model (for result
    /// extraction).
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an event at an absolute time before or between runs.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current instant.
    pub fn schedule_at(&mut self, time: SimTime, event: M::Event) -> EventId {
        assert!(time >= self.now, "scheduling into the past");
        self.queue.push(time, event)
    }

    /// Schedules an event `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDur, event: M::Event) -> EventId {
        self.queue.push(self.now + delay, event)
    }

    /// Cancels a scheduled event.
    pub fn cancel(&mut self, id: EventId) {
        self.queue.cancel(id)
    }

    /// Processes the single earliest event. Returns `false` if the queue
    /// was empty or a stop was requested.
    pub fn step(&mut self) -> bool {
        if self.stop {
            return false;
        }
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.events_processed += 1;
        let mut ctx = Ctx {
            now: self.now,
            queue: &mut self.queue,
            stop: &mut self.stop,
        };
        self.model.handle(event, &mut ctx);
        true
    }

    /// Runs until the queue drains or the model calls [`Ctx::stop`].
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the clock would pass `deadline` (events at exactly
    /// `deadline` still fire), the queue drains, or the model stops.
    /// Afterwards the clock reads `min(deadline, last event time)`.
    pub fn run_until(&mut self, deadline: SimTime) {
        // `peek_time` is non-mutating, so the bound check borrows the
        // queue only for the comparison.
        while !self.stop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => return,
            }
        }
    }

    /// Clears a stop request so the simulation can be resumed.
    pub fn clear_stop(&mut self) {
        self.stop = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(u64, u32)>,
        respawn: bool,
    }

    #[derive(Debug, PartialEq)]
    struct Ev(u32);

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            self.seen.push((ctx.now().as_nanos(), ev.0));
            if self.respawn && ev.0 < 3 {
                ctx.after(SimDur::nanos(10), Ev(ev.0 + 1));
            }
            if ev.0 == 99 {
                ctx.stop();
            }
        }
    }

    fn sim(respawn: bool) -> Simulation<Recorder> {
        Simulation::new(Recorder {
            seen: vec![],
            respawn,
        })
    }

    #[test]
    fn runs_events_in_order_and_advances_clock() {
        let mut s = sim(false);
        s.schedule_at(SimTime::from_nanos(20), Ev(2));
        s.schedule_at(SimTime::from_nanos(10), Ev(1));
        s.run();
        assert_eq!(s.model().seen, vec![(10, 1), (20, 2)]);
        assert_eq!(s.now(), SimTime::from_nanos(20));
        assert_eq!(s.events_processed(), 2);
    }

    #[test]
    fn model_can_schedule_followups() {
        let mut s = sim(true);
        s.schedule_at(SimTime::from_nanos(0), Ev(0));
        s.run();
        assert_eq!(s.model().seen, vec![(0, 0), (10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn run_until_is_inclusive_and_resumable() {
        let mut s = sim(true);
        s.schedule_at(SimTime::from_nanos(0), Ev(0));
        s.run_until(SimTime::from_nanos(10));
        assert_eq!(s.model().seen, vec![(0, 0), (10, 1)]);
        s.run();
        assert_eq!(s.model().seen.len(), 4);
    }

    #[test]
    fn stop_halts_run() {
        let mut s = sim(false);
        s.schedule_at(SimTime::from_nanos(1), Ev(99));
        s.schedule_at(SimTime::from_nanos(2), Ev(1));
        s.run();
        assert_eq!(s.model().seen, vec![(1, 99)]);
        s.clear_stop();
        s.run();
        assert_eq!(s.model().seen, vec![(1, 99), (2, 1)]);
    }

    #[test]
    fn cancel_from_outside() {
        let mut s = sim(false);
        let id = s.schedule_at(SimTime::from_nanos(5), Ev(7));
        s.cancel(id);
        s.run();
        assert!(s.model().seen.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut s = sim(false);
        s.schedule_at(SimTime::from_nanos(5), Ev(1));
        s.run();
        s.schedule_at(SimTime::from_nanos(1), Ev(2));
    }
}
