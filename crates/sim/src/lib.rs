//! # lp-sim — deterministic discrete-event simulation engine
//!
//! The substrate underneath the whole LibPreemptible reproduction. All
//! higher layers (`lp-hw`, `lp-kernel`, the runtime itself) are
//! expressed as [`Model`]s: state machines that receive timestamped events
//! and schedule follow-ups.
//!
//! Design rules enforced here:
//!
//! * **Total event order** — the [`EventQueue`] breaks time ties by
//!   scheduling order, so runs are reproducible.
//! * **Causality** — models schedule through [`Ctx`], which rejects
//!   scheduling into the past.
//! * **Determinism** — all randomness flows through [`rng`] substreams of
//!   a single master seed.
//! * **Parallelism only *between* runs** — a single simulation never
//!   crosses a thread; [`par::ordered_map`] fans independent seeded
//!   runs onto a scoped pool and collects results in submission order,
//!   so sweeps parallelize without touching the determinism story.
//!
//! ```
//! use lp_sim::{Ctx, Model, SimDur, SimTime, Simulation};
//!
//! /// An M/D/1-ish toy: one server, fixed 2 us service, arrivals pushed
//! /// in from outside.
//! #[derive(Default)]
//! struct Server {
//!     queue: u32,
//!     busy: bool,
//!     done: u32,
//! }
//! enum Ev {
//!     Arrive,
//!     Finish,
//! }
//! impl Model for Server {
//!     type Event = Ev;
//!     fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
//!         match ev {
//!             Ev::Arrive => {
//!                 if self.busy {
//!                     self.queue += 1;
//!                 } else {
//!                     self.busy = true;
//!                     ctx.after(SimDur::micros(2), Ev::Finish);
//!                 }
//!             }
//!             Ev::Finish => {
//!                 self.done += 1;
//!                 if self.queue > 0 {
//!                     self.queue -= 1;
//!                     ctx.after(SimDur::micros(2), Ev::Finish);
//!                 } else {
//!                     self.busy = false;
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Server::default());
//! for i in 0..3 {
//!     sim.schedule_at(SimTime::from_nanos(i * 500), Ev::Arrive);
//! }
//! sim.run();
//! assert_eq!(sim.model().done, 3);
//! assert_eq!(sim.now(), SimTime::from_nanos(6_000));
//! ```

#![warn(missing_docs)]

mod engine;
pub mod fault;
pub mod obs;
pub mod par;
mod queue;
pub mod rng;
mod time;
pub mod trace;
mod wheel;

pub use engine::{Ctx, Model, Simulation};
pub use queue::{EventId, EventQueue};
pub use time::{SimDur, SimTime};
