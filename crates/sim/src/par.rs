//! Deterministic fan-out primitives for *independent* simulation runs.
//!
//! Nothing here touches a running simulation: a single simulation is
//! strictly single-threaded (that is what makes it byte-deterministic).
//! What **is** embarrassingly parallel is the space *around* one run —
//! the paper's sweeps are grids of `(system, workload, rate, seed)`
//! points, every point a self-contained seeded simulation. This module
//! provides the one primitive that exploits that safely:
//! [`ordered_map`], a fixed-size scoped-thread pool whose results are
//! collected **in submission order**, so downstream rendering is
//! byte-identical to a serial loop no matter how the OS schedules the
//! workers.
//!
//! Determinism argument, in full:
//!
//! 1. each job `i` computes `f(i, &items[i])` from its inputs only
//!    (jobs share no mutable state — the `Fn + Sync` bound plus the
//!    absence of interior mutability in the item types enforces this at
//!    compile time);
//! 2. job `i`'s result is stored in slot `i`, never appended, so the
//!    output `Vec` order is the submission order;
//! 3. therefore the returned `Vec` is a pure function of `items`,
//!    independent of thread count and interleaving. `LP_JOBS=1` and
//!    `LP_JOBS=64` produce the same bytes (pinned by the tier-1
//!    determinism test, `tests/determinism.rs`).
//!
//! Worker threads mark themselves with a thread-local flag; a nested
//! `ordered_map` issued from inside a pool job runs serially inline
//! instead of spawning a second level of threads, so composed fan-outs
//! (an experiment binary fanning out figures that fan out points)
//! cannot oversubscribe the machine.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Set for the lifetime of a pool worker thread.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// `true` when called from inside an [`ordered_map`] worker. Nested
/// fan-outs use this to degrade to the serial path.
pub fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Maps `f` over `items` on at most `jobs` scoped threads, returning
/// results **in item order**.
///
/// `f` receives `(index, &item)`. With `jobs <= 1`, a single item, or
/// when already inside a pool worker, the map runs serially on the
/// calling thread — this is the reference behavior the parallel path
/// must (and does) reproduce byte-for-byte.
///
/// Panics in a job propagate to the caller when the scope joins.
///
/// ```
/// let squares = lp_sim::par::ordered_map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn ordered_map<T, U, F>(jobs: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 || in_pool() {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let threads = jobs.min(n);
    let next = AtomicUsize::new(0);
    // One slot per item. A Mutex per slot (not one around the whole
    // vec) keeps stores uncontended; each slot is written exactly once,
    // by whichever worker claimed its index.
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // `thread::scope` here is covered by the lint's static nondet
    // allowlist (rules::NONDET_FILE_ALLOWLIST): the fan-out is over
    // independent seeded runs and collection is order-preserving, so
    // output bytes are interleaving-independent. See docs/CHECKS.md.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("pool worker skipped a slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial = ordered_map(1, &items, |i, &x| (i as u64) * 1_000 + x * x);
        for jobs in [2, 3, 8, 64] {
            let par = ordered_map(jobs, &items, |i, &x| (i as u64) * 1_000 + x * x);
            assert_eq!(serial, par, "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u64> = ordered_map(8, &[], |_, x: &u64| *x);
        assert!(empty.is_empty());
        assert_eq!(ordered_map(8, &[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn nested_maps_run_inline() {
        let outer = ordered_map(4, &[10u64, 20, 30], |_, &base| {
            // From a worker thread, the inner map must not spawn.
            assert!(in_pool());
            let inner = ordered_map(4, &[1u64, 2, 3], |_, &x| {
                assert!(in_pool());
                base + x
            });
            inner.iter().sum::<u64>()
        });
        assert_eq!(outer, vec![36, 66, 96]);
        assert!(!in_pool(), "caller thread must not be marked as pool worker");
    }

    #[test]
    fn more_jobs_than_items() {
        let out = ordered_map(64, &[1u64, 2], |i, &x| x + i as u64);
        assert_eq!(out, vec![1, 3]);
    }
}
