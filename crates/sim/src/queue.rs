//! The pending-event queue.
//!
//! A binary heap whose ordering key is a single packed `u128`:
//! `(time << 64) | seq`, where `seq` is a monotonically increasing
//! sequence number. One integer compare per sift step keeps the pop
//! path tight, and the sequence number makes event ordering *total* and
//! therefore the whole simulation deterministic: two events scheduled
//! for the same instant fire in scheduling order.
//!
//! Cancellation is O(1) via **generation-tagged slots** instead of a
//! tombstone set. Every scheduled event borrows a slot in a small
//! table; its [`EventId`] packs `(slot, generation)`. An entry is live
//! exactly while its generation matches the slot's current generation,
//! so [`EventQueue::cancel`] is one bounds-checked compare + increment
//! — including the cancel-after-fire case that used to leave a
//! tombstone behind until the heap fully drained. This is the pattern
//! needed by re-armed deadlines (LibUtimer re-arms a thread's
//! preemption deadline every time the scheduler grants a new quantum,
//! invalidating the previously scheduled expiry): cancel + re-push is
//! O(log n) with no per-tombstone memory left behind.
//!
//! Dead entries are popped from the heap lazily, but the queue
//! maintains the invariant that the *top* of the heap is always live
//! (cancel and pop both drain dead tops, each dead entry is popped
//! exactly once, so the amortized cost is unchanged). That invariant is
//! what lets [`EventQueue::peek_time`] and [`EventQueue::is_empty`]
//! take `&self` — there is never cleanup left to do at peek time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled.
///
/// Internally packs `(generation, slot)`; the raw value is an opaque
/// handle (stable within a run, reproducible across runs with the same
/// seed, but *not* monotonic — slots are reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The raw handle bits, useful in traces. Opaque: encodes a reused
    /// slot index plus its generation, not a sequence number.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    /// `(time << 64) | seq` — orders by time, ties broken by insertion
    /// order, in one integer compare.
    key: u128,
    slot: u32,
    gen: u32,
    event: E,
}

impl<E> Entry<E> {
    fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other.key.cmp(&self.key)
    }
}

/// A deterministic priority queue of timestamped events.
///
/// ```
/// use lp_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// let a = q.push(SimTime::from_nanos(10), "a");
/// let _b = q.push(SimTime::from_nanos(5), "b");
/// q.cancel(a);
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Current generation per slot. An entry is live iff its stored
    /// generation equals its slot's.
    slots: Vec<u32>,
    /// Reusable slot indices.
    free: Vec<u32>,
    /// Live (scheduled, not cancelled, not fired) events.
    live: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue pre-sized for `capacity` concurrently
    /// scheduled events (an *arrival-rate hint*: the heap and the slot
    /// table allocate up front instead of growing through the run's
    /// ramp-up).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`. Returns an id usable with
    /// [`cancel`](Self::cancel).
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(0);
                s
            }
        };
        let gen = self.slots[slot as usize];
        self.live += 1;
        self.heap.push(Entry {
            key: ((time.as_nanos() as u128) << 64) | seq as u128,
            slot,
            gen,
            event,
        });
        EventId::new(slot, gen)
    }

    /// `true` while the entry owning (`slot`, `gen`) is still scheduled.
    fn id_live(&self, slot: u32, gen: u32) -> bool {
        self.slots
            .get(slot as usize)
            .is_some_and(|&cur| cur == gen)
    }

    /// Invalidates a slot (its current entry becomes dead) and recycles
    /// it for the next push.
    fn retire(&mut self, slot: u32) {
        self.slots[slot as usize] = self.slots[slot as usize].wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
    }

    /// Re-establishes the "heap top is live" invariant after a retire.
    fn drain_dead_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.id_live(top.slot, top.gen) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Cancels a previously scheduled event in O(1) (plus amortized
    /// cleanup of dead heap tops).
    ///
    /// Cancelling an id that already fired (or was already cancelled) is
    /// a no-op: the slot's generation has moved on, so the stale id
    /// matches nothing and leaves no state behind.
    pub fn cancel(&mut self, id: EventId) {
        if !self.id_live(id.slot(), id.gen()) {
            return;
        }
        self.retire(id.slot());
        self.drain_dead_top();
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Invariant: the heap top is live (dead entries are drained by
        // the cancel/pop that killed or uncovered them).
        let entry = self.heap.pop()?;
        debug_assert!(self.id_live(entry.slot, entry.gen), "dead entry at heap top");
        self.retire(entry.slot);
        self.drain_dead_top();
        Some((entry.time(), entry.event))
    }

    /// The timestamp of the earliest live event without removing it.
    ///
    /// Non-mutating: the heap top is maintained live by
    /// [`cancel`](Self::cancel)/[`pop`](Self::pop), so there is no lazy
    /// cleanup left to do here.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(Entry::time)
    }

    /// Number of live (scheduled, not cancelled) events. O(1).
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Number of entries still in the heap, *including* not-yet-drained
    /// cancelled entries. An upper bound on live events.
    pub fn len_upper_bound(&self) -> usize {
        self.heap.len()
    }

    /// Size of the slot table: the high-water mark of concurrently
    /// scheduled events. Exposed so capacity regressions (leaking slots
    /// or tombstone-style growth) are testable.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no live events remain. O(1), non-mutating.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "first");
        q.push(t(5), "second");
        q.push(t(5), "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn ties_break_by_insertion_order_across_slot_reuse() {
        // Slot reuse must not disturb the time-tie ordering: the order
        // key is the monotonic sequence number, not the recycled id.
        let mut q = EventQueue::new();
        let a = q.push(t(5), "dead");
        q.cancel(a); // frees slot 0
        q.push(t(5), "first"); // reuses slot 0, later seq
        q.push(t(5), "second");
        q.push(t(3), "zeroth");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["zeroth", "first", "second"]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        q.cancel(a); // already fired
        q.push(t(2), "b");
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn peek_is_nonmutating_and_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(7), "b");
        q.cancel(a);
        // &self peeks: no &mut needed.
        let r = &q;
        assert_eq!(r.peek_time(), Some(t(7)));
        assert!(!r.is_empty());
        assert_eq!(q.pop(), Some((t(7), "b")));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1u32);
        q.cancel(a);
        q.cancel(a);
        assert!(q.pop().is_none());
        // A later event with a fresh id must not be affected by the
        // stale handle, even though it reuses the slot.
        let b = q.push(t(2), 2u32);
        q.cancel(a); // stale generation: no-op
        assert_ne!(a, b);
        assert_eq!(q.pop(), Some((t(2), 2u32)));
    }

    #[test]
    fn cancel_after_fire_does_not_accumulate_state() {
        // Regression test for unbounded tombstone growth: ids cancelled
        // *after* firing used to sit in the tombstone set until the heap
        // fully drained. With generation slots they are O(1) no-ops.
        let mut q = EventQueue::new();
        // A far-future event keeps the heap from ever draining.
        let _far = q.push(t(u64::MAX / 2), 0u64);
        for i in 1..=10_000u64 {
            let id = q.push(t(i), i);
            assert_eq!(q.pop().map(|(_, e)| e), Some(i));
            q.cancel(id); // cancel after fire, heap still non-empty
        }
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.len_upper_bound(), 1, "dead entries accumulated");
        assert!(
            q.slot_capacity() <= 2,
            "slot table grew without bound: {}",
            q.slot_capacity()
        );
    }

    #[test]
    fn cancel_rearm_pattern_is_bounded() {
        // The LibUtimer deadline pattern: each grant cancels the
        // previous deadline and arms a new one. State must stay O(live).
        let mut q = EventQueue::new();
        let mut deadline = q.push(t(10), 0u64);
        for i in 1..=10_000u64 {
            q.cancel(deadline);
            deadline = q.push(t(10 + i), i);
        }
        assert_eq!(q.live_len(), 1);
        // Dead entries above the live one are drained as they surface;
        // here every cancel hits the heap top, so nothing accumulates.
        assert_eq!(q.len_upper_bound(), 1);
        assert!(q.slot_capacity() <= 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(10_000));
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<u32> = EventQueue::with_capacity(1_024);
        assert!(q.is_empty());
        assert_eq!(q.slot_capacity(), 0);
        assert_eq!(q.len_upper_bound(), 0);
    }

    #[test]
    fn live_len_tracks_all_paths() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        let _b = q.push(t(2), 2);
        assert_eq!(q.live_len(), 2);
        q.cancel(a);
        assert_eq!(q.live_len(), 1);
        q.pop();
        assert_eq!(q.live_len(), 0);
        assert!(q.is_empty());
    }
}
