//! The pending-event queue.
//!
//! A binary heap ordered by `(time, seq)` where `seq` is a monotonically
//! increasing sequence number. The sequence number makes event ordering
//! *total* and therefore the whole simulation deterministic: two events
//! scheduled for the same instant fire in scheduling order.
//!
//! Cancellation is cheap via tombstones: [`EventQueue::cancel`] records
//! the event id in an ordered set and [`EventQueue::pop`] skips dead
//! entries. This is the pattern needed by re-armed deadlines (LibUtimer
//! re-arms a thread's preemption deadline every time the scheduler
//! grants a new quantum, invalidating the previously scheduled expiry).
//! The tombstone set is a `BTreeSet`, not a hash set: randomized
//! hashing is a nondeterminism source the `lp-check` `nondet` lint
//! bans from sim-path crates, and id lookups here are O(log n) on a
//! set that is almost always tiny.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number, useful in traces.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, id) pops
        // first.
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// A deterministic priority queue of timestamped events.
///
/// ```
/// use lp_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// let a = q.push(SimTime::from_nanos(10), "a");
/// let _b = q.push(SimTime::from_nanos(5), "b");
/// q.cancel(a);
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: BTreeSet<EventId>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`. Returns an id usable with
    /// [`cancel`](Self::cancel).
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.heap.push(Entry { time, id, event });
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancelling an id that already fired (or was already cancelled) is a
    /// no-op; the tombstone is reclaimed lazily.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Removes and returns the earliest live event, skipping cancelled
    /// entries.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            return Some((entry.time, entry.event));
        }
        // The heap is empty; any remaining tombstones refer to ids that
        // will never pop (already fired), so drop them.
        self.cancelled.clear();
        None
    }

    /// The timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let e = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&e.id);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of entries still in the heap, *including* not-yet-skipped
    /// cancelled entries. An upper bound on live events.
    pub fn len_upper_bound(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "first");
        q.push(t(5), "second");
        q.push(t(5), "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        q.cancel(a); // already fired
        q.push(t(2), "b");
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(7), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.pop(), Some((t(7), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1u32);
        q.cancel(a);
        q.cancel(a);
        assert!(q.pop().is_none());
        // A later event with a fresh id must not be affected by the stale
        // tombstone.
        q.push(t(2), 2u32);
        assert_eq!(q.pop(), Some((t(2), 2u32)));
    }
}
