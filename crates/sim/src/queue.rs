//! The pending-event queue.
//!
//! Since the timing-wheel rebuild this type is a thin facade over the
//! shared hierarchical wheel core in [`crate::wheel`]: near-future
//! events live in cascading wheel levels (four levels × 1024 slots at
//! a 1 ns tick, so ~18 min of horizon) with O(1) arm/cancel/re-arm;
//! far-future events overflow to a packed-`u128` binary heap and
//! migrate into the wheel on top-level rollover. The ordering key is
//! unchanged — `(time << 64) | seq` with a monotonically increasing
//! sequence number — and [`EventQueue::pop`] always returns the
//! globally smallest live key, so event order is *total* and the whole
//! simulation stays deterministic: two events scheduled for the same
//! instant fire in scheduling order, byte-identical to the old
//! pure-heap engine.
//!
//! Cancellation is O(1) via **generation-tagged slab nodes** instead
//! of a tombstone set. Every scheduled event borrows a node in the
//! wheel's slab; its [`EventId`] packs `(slot, generation)`. An entry
//! is live exactly while its generation matches the node's current
//! one, so [`EventQueue::cancel`] is one bounds-checked compare (plus
//! an intrusive-list unlink for wheel-resident events) — including the
//! cancel-after-fire case. This is the pattern needed by re-armed
//! deadlines (LibUtimer re-arms a thread's preemption deadline every
//! time the scheduler grants a new quantum, invalidating the
//! previously scheduled expiry): cancel + re-push is O(1) with no
//! per-tombstone memory left behind and no heap sift at all.
//!
//! Cancelled heap-resident entries die lazily by generation bump, but
//! the queue maintains the invariant that the heap *top* is always
//! live, and the wheel side caches its exact minimum. That is what
//! lets [`EventQueue::peek_time`] and [`EventQueue::is_empty`] take
//! `&self` (non-mutating) — there is never cleanup left to do at peek
//! time. Geometry, cost model, and the determinism argument are laid
//! out in `docs/PERFORMANCE.md` and on the [`crate::wheel`] module.

use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// Identifies a scheduled event so it can be cancelled.
///
/// Internally packs `(generation, slot)`; the raw value is an opaque
/// handle (stable within a run, reproducible across runs with the same
/// seed, but *not* monotonic — slots are reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The raw handle bits, useful in traces. Opaque: encodes a reused
    /// slot index plus its generation, not a sequence number.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// A deterministic priority queue of timestamped events.
///
/// ```
/// use lp_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// let a = q.push(SimTime::from_nanos(10), "a");
/// let _b = q.push(SimTime::from_nanos(5), "b");
/// q.cancel(a);
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.wheel.fmt(f)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue pre-sized for `capacity` concurrently
    /// scheduled events (an *arrival-rate hint*: the node slab and the
    /// overflow heap allocate up front instead of growing through the
    /// run's ramp-up, keeping the arm path allocation-free).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            wheel: TimerWheel::with_capacity(capacity),
        }
    }

    /// Schedules `event` to fire at `time`. Returns an id usable with
    /// [`cancel`](Self::cancel).
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let (slot, gen) = self.wheel.push(time, event);
        EventId::new(slot, gen)
    }

    /// Cancels a previously scheduled event in O(1): a generation
    /// compare plus an intrusive-list unlink for wheel-resident events
    /// (heap residents die by generation bump and drain lazily).
    ///
    /// Cancelling an id that already fired (or was already cancelled) is
    /// a no-op: the node's generation has moved on, so the stale id
    /// matches nothing and leaves no state behind.
    pub fn cancel(&mut self, id: EventId) {
        self.wheel.cancel(id.slot(), id.gen());
    }

    /// Removes and returns the earliest live event, wherever it lives
    /// (wheel bucket or overflow heap) — the globally smallest
    /// `(time, seq)` key.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.wheel.pop()
    }

    /// The timestamp of the earliest live event without removing it.
    ///
    /// Non-mutating: the wheel caches its exact minimum and the heap
    /// top is maintained live by [`cancel`](Self::cancel)/
    /// [`pop`](Self::pop), so there is no lazy cleanup left to do here.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek_time()
    }

    /// Number of live (scheduled, not cancelled) events. O(1).
    pub fn live_len(&self) -> usize {
        self.wheel.live_len()
    }

    /// Live events *plus* not-yet-drained cancelled overflow entries.
    /// An upper bound on tracked entries.
    pub fn len_upper_bound(&self) -> usize {
        self.wheel.len_upper_bound()
    }

    /// Size of the node slab: the high-water mark of concurrently
    /// scheduled events. Exposed so capacity regressions (leaking
    /// nodes or tombstone-style growth) are testable.
    pub fn slot_capacity(&self) -> usize {
        self.wheel.slab_len()
    }

    /// `true` when no live events remain. O(1), non-mutating.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Test hook: forces a slab node's generation (see
    /// [`TimerWheel::force_gen`]).
    #[cfg(test)]
    fn force_gen(&mut self, slot: u32, gen: u32) {
        self.wheel.force_gen(slot, gen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wheel::HORIZON;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    /// Pops everything, returning the payloads in pop order (the tests
    /// avoid iterator `collect` so this file stays clean under the
    /// `hot-alloc` lint).
    fn drain_payloads<E>(q: &mut EventQueue<E>) -> Vec<E> {
        let mut out = Vec::with_capacity(q.live_len());
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(drain_payloads(&mut q), [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "first");
        q.push(t(5), "second");
        q.push(t(5), "third");
        assert_eq!(drain_payloads(&mut q), ["first", "second", "third"]);
    }

    #[test]
    fn ties_break_by_insertion_order_across_slot_reuse() {
        // Slot reuse must not disturb the time-tie ordering: the order
        // key is the monotonic sequence number, not the recycled id.
        let mut q = EventQueue::new();
        let a = q.push(t(5), "dead");
        q.cancel(a); // frees slot 0
        q.push(t(5), "first"); // reuses slot 0, later seq
        q.push(t(5), "second");
        q.push(t(3), "zeroth");
        assert_eq!(drain_payloads(&mut q), ["zeroth", "first", "second"]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        q.cancel(a); // already fired
        q.push(t(2), "b");
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn peek_is_nonmutating_and_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(7), "b");
        q.cancel(a);
        // &self peeks: no &mut needed.
        let r = &q;
        assert_eq!(r.peek_time(), Some(t(7)));
        assert!(!r.is_empty());
        assert_eq!(q.pop(), Some((t(7), "b")));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1u32);
        q.cancel(a);
        q.cancel(a);
        assert!(q.pop().is_none());
        // A later event with a fresh id must not be affected by the
        // stale handle, even though it reuses the slot.
        let b = q.push(t(2), 2u32);
        q.cancel(a); // stale generation: no-op
        assert_ne!(a, b);
        assert_eq!(q.pop(), Some((t(2), 2u32)));
    }

    #[test]
    fn cancel_after_fire_does_not_accumulate_state() {
        // Regression test for unbounded tombstone growth: ids cancelled
        // *after* firing used to sit in the tombstone set until the
        // queue fully drained. With generation-tagged nodes they are
        // O(1) no-ops.
        let mut q = EventQueue::new();
        // A far-future event keeps the queue from ever draining (far
        // enough to sit in the overflow heap the whole time).
        let _far = q.push(t(u64::MAX / 2), 0u64);
        for i in 1..=10_000u64 {
            let id = q.push(t(i), i);
            assert_eq!(q.pop().map(|(_, e)| e), Some(i));
            q.cancel(id); // cancel after fire, queue still non-empty
        }
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.len_upper_bound(), 1, "dead entries accumulated");
        assert!(
            q.slot_capacity() <= 2,
            "slab grew without bound: {}",
            q.slot_capacity()
        );
    }

    #[test]
    fn cancel_rearm_pattern_is_bounded() {
        // The LibUtimer deadline pattern: each grant cancels the
        // previous deadline and arms a new one. State must stay O(live).
        let mut q = EventQueue::new();
        let mut deadline = q.push(t(10), 0u64);
        for i in 1..=10_000u64 {
            q.cancel(deadline);
            deadline = q.push(t(10 + i), i);
        }
        assert_eq!(q.live_len(), 1);
        // Cancelled wheel entries unlink eagerly; nothing accumulates.
        assert_eq!(q.len_upper_bound(), 1);
        assert!(q.slot_capacity() <= 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(10_000));
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<u32> = EventQueue::with_capacity(1_024);
        assert!(q.is_empty());
        assert_eq!(q.slot_capacity(), 0);
        assert_eq!(q.len_upper_bound(), 0);
    }

    #[test]
    fn live_len_tracks_all_paths() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        let _b = q.push(t(2), 2);
        assert_eq!(q.live_len(), 2);
        q.cancel(a);
        assert_eq!(q.live_len(), 1);
        q.pop();
        assert_eq!(q.live_len(), 0);
        assert!(q.is_empty());
    }

    // -- wheel edge cases --------------------------------------------

    #[test]
    fn same_tick_on_two_levels_pops_in_seq_order() {
        // A filed before the cursor moves lands at level 1; C filed for
        // the *same tick* after a pop advanced the cursor lands at
        // level 0. The queue must still pop by (time, seq) across the
        // level split.
        let mut q = EventQueue::new();
        q.push(t(64), "A"); // delta 64 from cursor 0 -> level 1
        q.push(t(63), "B"); // level 0
        assert_eq!(q.pop(), Some((t(63), "B"))); // cursor now 63
        q.push(t(64), "C"); // delta 1 -> level 0, same tick as A
        q.push(t(65), "D");
        assert_eq!(drain_payloads(&mut q), ["A", "C", "D"]);
    }

    #[test]
    fn same_tick_across_levels_survives_min_recompute() {
        // Same construction, but cancel the cached minimum so the
        // recompute walk has to compare the stale level-1 bucket
        // against the fresh level-0 one.
        let mut q = EventQueue::new();
        let a = q.push(t(64), "A"); // level 1 (filed at cursor 0)
        q.push(t(63), "B");
        assert_eq!(q.pop(), Some((t(63), "B")));
        q.push(t(64), "C"); // level 0, same tick
        q.push(t(65), "D"); // level 0
        q.cancel(a); // kill the minimum -> exact recompute
        assert_eq!(q.peek_time(), Some(t(64)));
        assert_eq!(drain_payloads(&mut q), ["C", "D"]);
    }

    #[test]
    fn cancel_after_cascade_unlinks_from_new_location() {
        // B and A share a level-1 bucket until popping C advances the
        // cursor into their window and cascades them down to level 0.
        // The pre-cascade id must still cancel B at its *new* location.
        let mut q = EventQueue::new();
        let _a = q.push(t(100), "A"); // level 1, slot 1
        let b = q.push(t(90), "B"); // same level-1 bucket
        q.push(t(70), "C"); // same level-1 bucket
        q.push(t(5), "D"); // level 0
        assert_eq!(q.pop(), Some((t(5), "D")));
        assert_eq!(q.pop(), Some((t(70), "C"))); // cascades A and B to level 0
        q.cancel(b);
        assert_eq!(q.live_len(), 1);
        assert_eq!(drain_payloads(&mut q), ["A"]);
    }

    #[test]
    fn far_future_overflow_boundary_is_exact() {
        // HORIZON - 1 is the last wheel-resident delta; HORIZON spills
        // to the overflow heap. Order is unaffected either way.
        let mut q = EventQueue::new();
        q.push(t(HORIZON - 1), "wheel-edge");
        q.push(t(HORIZON), "heap-edge");
        let c = q.push(t(HORIZON + 1), "heap");
        q.cancel(c); // heap-resident cancel: lazy generation bump
        assert_eq!(q.live_len(), 2);
        assert_eq!(drain_payloads(&mut q), ["wheel-edge", "heap-edge"]);
    }

    #[test]
    fn overflow_migration_keeps_ids_valid() {
        // Popping across a top-level window rollover migrates heap
        // entries into the wheel. Node indices and generations are
        // stable across the move, so a pre-migration id still cancels.
        let mut q = EventQueue::new();
        let a = q.push(t(HORIZON), "A"); // heap
        let b = q.push(t(HORIZON + 50), "B"); // heap
        q.push(t(HORIZON - 10), "C"); // wheel, top level
        assert_eq!(q.pop(), Some((t(HORIZON - 10), "C")));
        // Popping A crosses the top-level boundary: B migrates in.
        assert_eq!(q.pop(), Some((t(HORIZON), "A")));
        let _ = a;
        q.cancel(b); // b now wheel-resident; id must still match
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn generation_wraparound_on_a_reused_slot() {
        // After 2^30 reuses a node's generation wraps and an ancient id
        // may alias a fresh one — the documented contract. Force the
        // wrap and check both sides: the stale pre-wrap id is dead, the
        // post-wrap id (aliasing the very first id ever issued for the
        // slot) works.
        let max_gen = crate::wheel::TimerWheel::<u32>::MAX_GEN;
        let mut q = EventQueue::new();
        let first = q.push(t(1), 1u32);
        q.pop();
        q.force_gen(0, max_gen);
        let pre_wrap = q.push(t(2), 2u32); // (slot 0, gen MAX_GEN)
        q.cancel(pre_wrap); // bump wraps MAX -> 0
        let post_wrap = q.push(t(3), 3u32); // (slot 0, gen 0) again
        assert_eq!(first, post_wrap, "wraparound aliases the first id");
        q.cancel(pre_wrap); // stale: no-op
        assert_eq!(q.live_len(), 1);
        q.cancel(post_wrap);
        assert!(q.is_empty());
    }

    #[test]
    fn million_rearm_cycles_do_not_grow_the_slab() {
        // Satellite regression: the lp-bench arm/cancel/re-arm shape at
        // 1M cycles. After warm-up the freelist must satisfy every
        // push — the slab high-water mark may not move.
        let mut q = EventQueue::with_capacity(64);
        for i in 0..32u64 {
            q.push(t(1_000_000_000 + i), i); // far background deadlines
        }
        let mut now = 0u64;
        let mut armed = q.push(t(now + 100), u64::MAX);
        for i in 0..1_000u64 {
            q.cancel(armed);
            now += 1 + (i % 99);
            armed = q.push(t(now + 100), u64::MAX);
        }
        let warm = q.slot_capacity();
        for i in 0..1_000_000u64 {
            q.cancel(armed);
            now += 1 + (i % 99);
            armed = q.push(t(now + 100), u64::MAX);
        }
        assert_eq!(
            q.slot_capacity(),
            warm,
            "slab grew after warm-up under steady-state re-arm"
        );
        assert_eq!(q.live_len(), 33);
    }
}
