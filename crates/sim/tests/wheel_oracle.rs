//! Differential fuzzer: the timing-wheel `EventQueue` vs a naive
//! sorted-scan oracle, over 3,200 deterministic episodes (400 seeds ×
//! 8 time scales spanning every wheel level, the 2^36 overflow
//! horizon, and far-future heap residents). Complements the proptest
//! oracle in `proptests.rs` with much deeper coverage and a built-in
//! delta-debugging shrinker: on mismatch, the panic message carries a
//! minimal reproducing op sequence (this is how the full-lap slot
//! aliasing bug pinned by `wheel.rs`'s regression test was found).

use lp_sim::{EventQueue, SimTime};

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Cancel(usize),
    Pop,
}

fn run_episode(ops: &[Op]) -> Result<(), String> {
    let mut q = EventQueue::new();
    // oracle: (time, seq, tag, alive)
    let mut naive: Vec<(u64, u64, u64, bool)> = Vec::new();
    let mut ids = Vec::new();
    let mut seq = 0u64;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Push(t) => {
                let id = q.push(SimTime::from_nanos(t), seq);
                ids.push((id, seq));
                naive.push((t, seq, seq, true));
                seq += 1;
            }
            Op::Cancel(k) => {
                if ids.is_empty() {
                    continue;
                }
                let (id, s) = ids[k % ids.len()];
                q.cancel(id);
                for e in naive.iter_mut() {
                    if e.1 == s {
                        e.3 = false;
                    }
                }
            }
            Op::Pop => {
                let got = q.pop();
                let want_idx = naive
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.3)
                    .min_by_key(|(_, e)| (e.0, e.1))
                    .map(|(j, _)| j);
                let want = want_idx.map(|j| (naive[j].0, naive[j].2));
                let got_pair = got.map(|(t, e)| (t.as_nanos(), e));
                if got_pair != want {
                    return Err(format!("op {i}: pop got {got_pair:?} want {want:?}"));
                }
                if let Some(j) = want_idx {
                    naive[j].3 = false;
                }
            }
        }
        let want_peek = naive
            .iter()
            .filter(|e| e.3)
            .map(|e| (e.0, e.1))
            .min()
            .map(|(t, _)| t);
        let got_peek = q.peek_time().map(|t| t.as_nanos());
        if got_peek != want_peek {
            return Err(format!("op {i} ({op:?}): peek got {got_peek:?} want {want_peek:?}"));
        }
        let want_live = naive.iter().filter(|e| e.3).count();
        if q.live_len() != want_live {
            return Err(format!("op {i}: live {} want {}", q.live_len(), want_live));
        }
    }
    Ok(())
}

fn gen_episode(rng: &mut Lcg, len: usize, tmax: u64) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..len {
        let r = rng.next() % 10;
        let op = match r {
            0..=4 => Op::Push(rng.next() % tmax),
            5..=6 => Op::Cancel(rng.next() as usize),
            _ => Op::Pop,
        };
        ops.push(op);
    }
    ops
}

fn shrink(mut ops: Vec<Op>) -> Vec<Op> {
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < ops.len() {
            let mut cand = ops.clone();
            cand.remove(i);
            if run_episode(&cand).is_err() {
                ops = cand;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            return ops;
        }
    }
}

#[test]
fn differential_fuzz() {
    let tmaxes = [8u64, 64, 100, 5_000, 1 << 20, (1 << 36) - 50, 1 << 37, u64::MAX / 2];
    for seed in 0..400u64 {
        for &tmax in &tmaxes {
            let mut rng = Lcg(seed * 1000 + tmax);
            let ops = gen_episode(&mut rng, 120, tmax);
            if let Err(e) = run_episode(&ops) {
                let min = shrink(ops);
                panic!("seed {seed} tmax {tmax}: {e}\nminimal ops ({}):\n{min:#?}", min.len());
            }
        }
    }
}
