//! Property tests for the event queue and engine ordering guarantees,
//! including the wheel-vs-heap oracle that pins the hierarchical
//! timing wheel to a naive sorted-scan model.

use lp_sim::{EventQueue, SimTime};
use proptest::prelude::*;

/// One queue operation for the oracle test. `Cancel` carries an index
/// into the ids issued so far (taken modulo their count).
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Cancel(usize),
    Pop,
}

/// Times spanning every wheel regime: level 0, mid levels, the 2^36
/// overflow horizon on both sides, and far-future heap residents.
fn time_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        0u64..100_000,
        0u64..10_000_000_000,
        ((1u64 << 36) - 100)..((1u64 << 36) + 100),
        0u64..u64::MAX / 2,
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => time_strategy().prop_map(Op::Push),
        2 => any::<usize>().prop_map(Op::Cancel),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    /// The wheel-vs-heap oracle: the timing-wheel queue agrees with a
    /// naive O(n)-scan model on every pop, peek, and live count, for
    /// arbitrary interleavings of push/cancel/pop across all wheel
    /// levels and the overflow heap.
    #[test]
    fn wheel_matches_naive_oracle(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        let mut q = EventQueue::new();
        // Oracle entries: (time, seq, alive). Pops select the minimum
        // (time, seq) — exactly the packed-u128 key order.
        let mut naive: Vec<(u64, u64, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut seq = 0u64;
        for op in &ops {
            match *op {
                Op::Push(t) => {
                    ids.push((q.push(SimTime::from_nanos(t), seq), seq));
                    naive.push((t, seq, true));
                    seq += 1;
                }
                Op::Cancel(k) => {
                    if ids.is_empty() {
                        continue;
                    }
                    let (id, s) = ids[k % ids.len()];
                    q.cancel(id);
                    naive[s as usize].2 = false;
                }
                Op::Pop => {
                    let want = naive
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.2)
                        .min_by_key(|(_, e)| (e.0, e.1))
                        .map(|(j, _)| j);
                    let got = q.pop().map(|(t, s)| (t.as_nanos(), s));
                    prop_assert_eq!(got, want.map(|j| (naive[j].0, naive[j].1)));
                    if let Some(j) = want {
                        naive[j].2 = false;
                    }
                }
            }
            let want_peek = naive.iter().filter(|e| e.2).map(|e| (e.0, e.1)).min();
            prop_assert_eq!(
                q.peek_time().map(|t| t.as_nanos()),
                want_peek.map(|(t, _)| t)
            );
            prop_assert_eq!(q.live_len(), naive.iter().filter(|e| e.2).count());
        }
        // Drain: the tail must come out in exact (time, seq) order.
        let mut rest: Vec<(u64, u64)> = naive
            .iter()
            .filter(|e| e.2)
            .map(|e| (e.0, e.1))
            .collect();
        rest.sort_unstable();
        for &want in &rest {
            prop_assert_eq!(q.pop().map(|(t, s)| (t.as_nanos(), s)), Some(want));
        }
        prop_assert!(q.pop().is_none());
    }

    /// Events always pop in nondecreasing time order, and ties pop in
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_exact(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push((q.push(SimTime::from_nanos(t), i), i));
        }
        for (idx, &(id, i)) in ids.iter().enumerate() {
            if cancel_mask[idx % cancel_mask.len()] {
                q.cancel(id);
            } else {
                expect.push(i);
            }
        }
        let mut got = Vec::new();
        while let Some((_, i)) = q.pop() {
            got.push(i);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
