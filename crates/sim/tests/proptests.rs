//! Property tests for the event queue and engine ordering guarantees,
//! including the wheel-vs-heap oracle that pins the hierarchical
//! timing wheel to a naive sorted-scan model, plus the JSONL
//! event-schema roundtrip that keeps `write_jsonl`/`parse_jsonl`
//! inverse of each other for every variant of the vocabulary.

use lp_sim::obs::{Event, TimedEvent};
use lp_sim::{EventQueue, SimTime};
use proptest::prelude::*;

/// One queue operation for the oracle test. `Cancel` carries an index
/// into the ids issued so far (taken modulo their count).
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Cancel(usize),
    Pop,
}

/// Times spanning every wheel regime: level 0, mid levels, the 2^36
/// overflow horizon on both sides, and far-future heap residents.
fn time_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        0u64..100_000,
        0u64..10_000_000_000,
        ((1u64 << 36) - 100)..((1u64 << 36) + 100),
        0u64..u64::MAX / 2,
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => time_strategy().prop_map(Op::Push),
        2 => any::<usize>().prop_map(Op::Cancel),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    /// The wheel-vs-heap oracle: the timing-wheel queue agrees with a
    /// naive O(n)-scan model on every pop, peek, and live count, for
    /// arbitrary interleavings of push/cancel/pop across all wheel
    /// levels and the overflow heap.
    #[test]
    fn wheel_matches_naive_oracle(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        let mut q = EventQueue::new();
        // Oracle entries: (time, seq, alive). Pops select the minimum
        // (time, seq) — exactly the packed-u128 key order.
        let mut naive: Vec<(u64, u64, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut seq = 0u64;
        for op in &ops {
            match *op {
                Op::Push(t) => {
                    ids.push((q.push(SimTime::from_nanos(t), seq), seq));
                    naive.push((t, seq, true));
                    seq += 1;
                }
                Op::Cancel(k) => {
                    if ids.is_empty() {
                        continue;
                    }
                    let (id, s) = ids[k % ids.len()];
                    q.cancel(id);
                    naive[s as usize].2 = false;
                }
                Op::Pop => {
                    let want = naive
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.2)
                        .min_by_key(|(_, e)| (e.0, e.1))
                        .map(|(j, _)| j);
                    let got = q.pop().map(|(t, s)| (t.as_nanos(), s));
                    prop_assert_eq!(got, want.map(|j| (naive[j].0, naive[j].1)));
                    if let Some(j) = want {
                        naive[j].2 = false;
                    }
                }
            }
            let want_peek = naive.iter().filter(|e| e.2).map(|e| (e.0, e.1)).min();
            prop_assert_eq!(
                q.peek_time().map(|t| t.as_nanos()),
                want_peek.map(|(t, _)| t)
            );
            prop_assert_eq!(q.live_len(), naive.iter().filter(|e| e.2).count());
        }
        // Drain: the tail must come out in exact (time, seq) order.
        let mut rest: Vec<(u64, u64)> = naive
            .iter()
            .filter(|e| e.2)
            .map(|e| (e.0, e.1))
            .collect();
        rest.sort_unstable();
        for &want in &rest {
            prop_assert_eq!(q.pop().map(|(t, s)| (t.as_nanos(), s)), Some(want));
        }
        prop_assert!(q.pop().is_none());
    }

    /// Events always pop in nondecreasing time order, and ties pop in
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_exact(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push((q.push(SimTime::from_nanos(t), i), i));
        }
        for (idx, &(id, i)) in ids.iter().enumerate() {
            if cancel_mask[idx % cancel_mask.len()] {
                q.cancel(id);
            } else {
                expect.push(i);
            }
        }
        let mut got = Vec::new();
        while let Some((_, i)) = q.pop() {
            got.push(i);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}

/// Number of [`Event`] variants; [`event_from`] must construct each.
/// Bumped together with the enum (the match below fails to cover a new
/// selector otherwise, and `every_variant_reachable` pins the count).
const EVENT_VARIANTS: u8 = 32;

/// Deterministically builds one event of the selected variant from raw
/// field material, exercising every variant of the vocabulary with
/// arbitrary field values (truncated to each field's width exactly as
/// the emitting code does).
fn event_from(sel: u8, a: u64, b: u64, c: u64, flag: bool) -> Event {
    let worker = a as u16;
    let fiber = a as u32;
    match sel % EVENT_VARIANTS {
        0 => Event::UipiSent { worker, vector: b as u8 },
        1 => Event::UipiDelivered { worker, coalesced: flag },
        2 => Event::UipiPended { worker },
        3 => Event::UipiSuppressed { worker },
        4 => Event::KernelAssistWake { worker },
        5 => Event::SignalSent { worker, lock_wait_ns: b },
        6 => Event::KtimerArmed { worker, target_ns: b },
        7 => Event::KtimerFired { worker },
        8 => Event::IpcSampled { mech: a as u8, latency_ns: b },
        9 => Event::DeadlineArmed { slot: a as u16, deadline_ns: b },
        10 => Event::DeadlineDisarmed { slot: a as u16 },
        11 => Event::TimerPoll { expired: a as u16 },
        12 => Event::Arrival { class: a as u8 },
        13 => Event::Drop { class: a as u8 },
        14 => Event::TaskStart { worker, fiber: b as u32, resumed: flag, switch_ns: c as u32 },
        15 => Event::TaskFinish { worker, fiber: b as u32, latency_ns: c },
        16 => Event::Preempt { worker, fiber: b as u32, ran_ns: c },
        17 => Event::SpuriousPreempt { worker },
        18 => Event::PolicyDispatch { worker, explicit: flag },
        19 => Event::SliceGranted { worker, fiber: b as u32, slice_ns: c },
        20 => Event::SwitchBegin { worker, fiber: b as u32, resumed: flag },
        21 => Event::QuantumAdjusted { old_ns: a, new_ns: b },
        22 => Event::Marker { code: fiber },
        23 => Event::FaultInjected { worker, kind: b as u8 },
        24 => Event::PreemptIssued { worker, seq: b, attempt: c as u8, uintr: flag },
        25 => Event::PreemptLanded { worker, seq: b, uintr: flag },
        26 => Event::PreemptRetry { worker, seq: b, attempt: c as u8, delay_ns: c },
        27 => Event::MechDegraded { worker, losses: b as u8 },
        28 => Event::MechRecovered { worker },
        29 => Event::MechBrownout { worker, losses: b as u8 },
        30 => Event::Shed { class: a as u8, queued: b as u32 },
        _ => Event::Admitted { class: a as u8, queued: b as u32 },
    }
}

/// Rotates the `"key":value` members of one flat JSONL object by `k`
/// positions. Values in the schema are bare numbers, booleans, or the
/// event-name string — never nested objects — so splitting on commas
/// is exact.
fn rotate_keys(line: &str, k: usize) -> String {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .expect("jsonl object");
    let mut parts: Vec<&str> = inner.split(',').collect();
    let n = parts.len();
    parts.rotate_left(k % n);
    format!("{{{}}}", parts.join(","))
}

proptest! {
    /// Every event variant, with arbitrary field material, survives
    /// `write_jsonl` → `parse_jsonl` → `write_jsonl` byte-identically,
    /// and the parser tolerates arbitrary key reorderings of the line.
    #[test]
    fn jsonl_roundtrips_every_variant(
        sel in 0u8..EVENT_VARIANTS,
        t in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        flag in any::<bool>(),
        rot in 0usize..12,
    ) {
        let te = TimedEvent {
            at: SimTime::from_nanos(t),
            ev: event_from(sel, a, b, c, flag),
        };
        let line = te.to_jsonl();
        let back = TimedEvent::parse_jsonl(&line);
        prop_assert_eq!(back, Some(te), "unparseable or lossy: {}", line);
        // Re-render: the parsed event serializes to the same bytes.
        prop_assert_eq!(back.unwrap().to_jsonl(), line.clone());
        // Reordered keys parse to the same event (the exporter's fixed
        // key order is a convenience, not a parser requirement).
        let rotated = rotate_keys(&line, rot);
        prop_assert_eq!(
            TimedEvent::parse_jsonl(&rotated),
            Some(te),
            "reordered line unparseable: {}",
            rotated
        );
    }
}

/// The selector space covers the whole vocabulary: each selector maps
/// to a distinct variant name, so `EVENT_VARIANTS` tracks the enum.
#[test]
fn every_variant_reachable() {
    let mut names: Vec<&str> = (0..EVENT_VARIANTS)
        .map(|sel| event_from(sel, 1, 2, 3, true).name())
        .collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), EVENT_VARIANTS as usize);
}
