//! Property tests for the event queue and engine ordering guarantees.

use lp_sim::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order, and ties pop in
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_exact(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push((q.push(SimTime::from_nanos(t), i), i));
        }
        for (idx, &(id, i)) in ids.iter().enumerate() {
            if cancel_mask[idx % cancel_mask.len()] {
                q.cancel(id);
            } else {
                expect.push(i);
            }
        }
        let mut got = Vec::new();
        while let Some((_, i)) = q.pop() {
            got.push(i);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
