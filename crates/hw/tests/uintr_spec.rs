//! Property test: random op sequences against [`UintrDomain`] agree —
//! outcome by outcome, bit by bit — with the reference state machine in
//! [`lp_hw::uintr_spec`], the same oracle the `lp-check` model checker
//! holds the domain to on *every* interleaving of its scenario suite.
//! Here the sequences are longer and the vectors wider than the model
//! checker's bounded programs, trading exhaustiveness for reach.

use lp_hw::uintr::{ReceiverState, Uitt, UintrDomain};
use lp_hw::uintr_spec::SpecUpid;
use proptest::prelude::*;

/// Compact op encoding: (kind, vector, receiver-state).
///
/// kind 0..=5: weighted toward sends (0..=2) so coalescing and
/// suppression windows actually fill; 3 = ack, 4 = suppress on,
/// 5 = suppress off.
fn apply_all(ops: &[(u8, u8, u8)]) -> Result<(), String> {
    let mut dom = UintrDomain::new();
    let h = dom.register_receiver();
    let mut uitt = Uitt::new();
    for v in 0..64 {
        uitt.register(h, v);
    }
    let mut spec = SpecUpid::new();

    for (i, &(kind, vector, rstate)) in ops.iter().enumerate() {
        let receiver = match rstate % 3 {
            0 => ReceiverState::RunningUifSet,
            1 => ReceiverState::RunningUifClear,
            _ => ReceiverState::Blocked,
        };
        match kind {
            0..=2 => {
                let entry = uitt.get(vector as usize % 64).expect("entry");
                let got = dom
                    .senduipi(entry, receiver)
                    .map_err(|e| format!("op {i}: send failed: {e}"))?;
                let want = spec.send(entry.vector, receiver);
                if got != want {
                    return Err(format!("op {i}: send -> {got:?}, spec {want:?}"));
                }
            }
            3 => {
                let got = dom.acknowledge(h).map_err(|e| format!("op {i}: ack: {e}"))?;
                let want = spec.acknowledge();
                if got != want {
                    return Err(format!("op {i}: ack {got:#x}, spec {want:#x}"));
                }
            }
            4 | 5 => {
                let on = kind == 4;
                dom.set_suppress(h, on)
                    .map_err(|e| format!("op {i}: set_suppress: {e}"))?;
                spec.set_suppress(on);
            }
            _ => unreachable!("kind is generated in 0..6"),
        }
        let u = dom.upid(h).expect("registered");
        if u.outstanding != spec.on || u.suppress != spec.sn || u.pending != spec.pir {
            return Err(format!(
                "op {i}: state diverged: domain (ON={} SN={} PIR={:#x}) vs spec (ON={} SN={} PIR={:#x})",
                u.outstanding, u.suppress, u.pending, spec.on, spec.sn, spec.pir
            ));
        }
        if !spec.on_implies_pending() || (u.outstanding && u.pending == 0) {
            return Err(format!("op {i}: ON set with empty PIR"));
        }
    }
    Ok(())
}

proptest! {
    /// Long random programs: the domain and the spec never disagree and
    /// the ON ⇒ pending invariant holds at every step.
    #[test]
    fn domain_agrees_with_spec(
        ops in proptest::collection::vec((0u8..6, 0u8..64, 0u8..3), 1..120)
    ) {
        let r = apply_all(&ops);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Whatever the interleaving of sends/suppressions, one final
    /// unsuppress + drain recovers exactly the union of posted vectors:
    /// nothing is lost, nothing is invented.
    #[test]
    fn final_drain_conserves_vectors(
        ops in proptest::collection::vec((0u8..6, 0u8..64, 0u8..3), 1..80)
    ) {
        let mut dom = UintrDomain::new();
        let h = dom.register_receiver();
        let mut uitt = Uitt::new();
        for v in 0..64 {
            uitt.register(h, v);
        }
        let mut sent = 0u64;
        let mut drained = 0u64;
        for &(kind, vector, rstate) in &ops {
            let receiver = match rstate % 3 {
                0 => ReceiverState::RunningUifSet,
                1 => ReceiverState::RunningUifClear,
                _ => ReceiverState::Blocked,
            };
            match kind {
                0..=2 => {
                    let entry = uitt.get(vector as usize % 64).expect("entry");
                    dom.senduipi(entry, receiver).expect("send");
                    sent |= 1u64 << entry.vector;
                }
                3 => drained |= dom.acknowledge(h).expect("ack"),
                4 | 5 => dom.set_suppress(h, kind == 4).expect("suppress"),
                _ => unreachable!(),
            }
        }
        dom.set_suppress(h, false).expect("unsuppress");
        drained |= dom.acknowledge(h).expect("final drain");
        prop_assert_eq!(drained, sent, "lost or invented vectors");
        prop_assert!(!dom.has_pending(h));
    }
}
