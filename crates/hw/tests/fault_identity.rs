//! Property test: a rate-0.0 [`FaultPlan`] is indistinguishable from no
//! injector at all. Whatever the magnitudes, seed, and op sequence, the
//! injector never decides to inject (and never even draws from its RNG
//! stream), so a domain driven through `senduipi_with_fault` with its
//! decisions lands in byte-identical state to one driven through plain
//! `senduipi` — outcome by outcome, UPID field by UPID field.
//!
//! This is the contract `FaultPlan::enabled()` gating in the runtime
//! rests on: armed-but-zero plans must be true no-ops.

use lp_hw::uintr::{ReceiverState, Uitt, UintrDomain};
use lp_sim::fault::{FaultInjector, FaultPlan};
use proptest::prelude::*;

/// A plan whose rates are all zero and schedule empty, but whose
/// magnitudes (which must be irrelevant at rate 0) are arbitrary.
fn zero_rate_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
        |(ipi_delay_ns, timer_spike_ns, core_hog_ns, contention_waiters)| FaultPlan {
            ipi_delay_ns,
            timer_spike_ns,
            core_hog_ns,
            contention_waiters,
            ..FaultPlan::default()
        },
    )
}

fn receiver(rstate: u8) -> ReceiverState {
    match rstate % 3 {
        0 => ReceiverState::RunningUifSet,
        1 => ReceiverState::RunningUifClear,
        _ => ReceiverState::Blocked,
    }
}

proptest! {
    /// Lockstep run: `plain` uses the pre-fault API, `faulted` consults
    /// a rate-0 injector at every site before every op. They must agree
    /// on every outcome and every observable UPID bit at every step.
    #[test]
    fn rate_zero_plan_is_byte_identical_to_no_injector(
        plan in zero_rate_plan(),
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..6, 0u8..64, 0u8..3), 1..120),
    ) {
        prop_assert!(!plan.enabled(), "all-zero rates must read as disabled");
        let mut inj = FaultInjector::new(plan, seed);

        let mut plain = UintrDomain::new();
        let hp = plain.register_receiver();
        let mut faulted = UintrDomain::new();
        let hf = faulted.register_receiver();
        let mut uitt = Uitt::new();
        for v in 0..64 {
            uitt.register(hp, v);
        }

        for (i, &(kind, vector, rstate)) in ops.iter().enumerate() {
            // Exercise every injection site each step: a rate-0 plan
            // must never produce a decision anywhere.
            let ipi = inj.ipi();
            prop_assert_eq!(ipi, None, "op {}: rate-0 plan injected an IPI fault", i);
            prop_assert_eq!(inj.timer(), None, "op {}: timer fault", i);
            prop_assert_eq!(inj.signal(), None, "op {}: signal fault", i);
            prop_assert_eq!(inj.core(), None, "op {}: core fault", i);

            let r = receiver(rstate);
            match kind {
                0..=2 => {
                    let entry = uitt.get(vector as usize % 64).expect("entry");
                    let a = plain.senduipi(entry, r).expect("plain send");
                    let b = faulted
                        .senduipi_with_fault(entry, r, ipi)
                        .expect("faulted send");
                    prop_assert_eq!(a, b, "op {}: send outcomes diverged", i);
                }
                3 => {
                    let a = plain.acknowledge(hp).expect("plain ack");
                    let b = faulted.acknowledge(hf).expect("faulted ack");
                    prop_assert_eq!(a, b, "op {}: drained vectors diverged", i);
                }
                4 | 5 => {
                    plain.set_suppress(hp, kind == 4).expect("plain suppress");
                    faulted.set_suppress(hf, kind == 4).expect("faulted suppress");
                }
                _ => unreachable!("kind is generated in 0..6"),
            }

            let a = plain.upid(hp).expect("plain registered");
            let b = faulted.upid(hf).expect("faulted registered");
            prop_assert_eq!(
                (a.outstanding, a.suppress, a.pending, a.ndst),
                (b.outstanding, b.suppress, b.pending, b.ndst),
                "op {}: UPID state diverged", i
            );
        }
    }

    /// The injector's RNG stream is untouched at rate 0: two injectors
    /// with different seeds make identical (all-`None`) decisions, and
    /// interleaving site queries in any order changes nothing.
    #[test]
    fn rate_zero_plan_never_draws(
        plan in zero_rate_plan(),
        seeds in (any::<u64>(), any::<u64>()),
        sites in proptest::collection::vec(0u8..4, 1..200),
    ) {
        let mut a = FaultInjector::new(plan.clone(), seeds.0);
        let mut b = FaultInjector::new(plan, seeds.1);
        for &s in &sites {
            match s {
                0 => prop_assert_eq!((a.ipi(), b.ipi()), (None, None)),
                1 => prop_assert_eq!((a.timer(), b.timer()), (None, None)),
                2 => prop_assert_eq!((a.signal(), b.signal()), (None, None)),
                _ => prop_assert_eq!((a.core(), b.core()), (None, None)),
            }
        }
    }
}
