//! Power model for timer cores (§V-B, "LibUtimer precision and power
//! cost").
//!
//! The paper justifies dedicating a core to LibUtimer by measuring its
//! cost at ~1.2 W when the poll loop uses `UMWAIT`, versus several watts
//! for a raw busy-spin, with each additional timer core costing little.

/// How the timer core waits between deadline checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollMode {
    /// Raw `RDTSC` spin loop — lowest latency, highest power.
    BusySpin,
    /// `UMWAIT`-assisted polling: the core naps in C0.1/C0.2 between
    /// deadline horizons and wakes on the TSC deadline.
    Umwait,
}

/// Package power model for dedicated timer cores.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Watts for the first timer core when busy-spinning.
    pub busy_spin_first_core_w: f64,
    /// Watts for the first timer core under `UMWAIT` (paper: ~1.2 W).
    pub umwait_first_core_w: f64,
    /// Marginal watts for each additional timer core (paper: "minimal").
    pub additional_core_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            busy_spin_first_core_w: 4.8,
            umwait_first_core_w: 1.2,
            additional_core_w: 0.15,
        }
    }
}

impl PowerModel {
    /// Power draw of `cores` dedicated timer cores in the given mode.
    ///
    /// Zero cores draw zero (the hardware-offload future-work variant).
    pub fn timer_power_w(&self, cores: usize, mode: PollMode) -> f64 {
        if cores == 0 {
            return 0.0;
        }
        let first = match mode {
            PollMode::BusySpin => self.busy_spin_first_core_w,
            PollMode::Umwait => self.umwait_first_core_w,
        };
        first + (cores - 1) as f64 * self.additional_core_w
    }

    /// Like [`timer_power_w`](Self::timer_power_w), but also publishes
    /// the draw to the `timer_power_w` gauge so run reports carry the
    /// §V-B power figure alongside the scheduling counters.
    pub fn timer_power_w_observed(
        &self,
        cores: usize,
        mode: PollMode,
        obs: &mut lp_sim::obs::Observer,
    ) -> f64 {
        let w = self.timer_power_w(cores, mode);
        obs.metrics_mut().set_gauge(lp_sim::obs::Gauge::TimerPowerW, w);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor() {
        let p = PowerModel::default();
        assert!((p.timer_power_w(1, PollMode::Umwait) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn umwait_saves_power() {
        let p = PowerModel::default();
        assert!(p.timer_power_w(1, PollMode::Umwait) < p.timer_power_w(1, PollMode::BusySpin));
    }

    #[test]
    fn additional_cores_are_cheap() {
        let p = PowerModel::default();
        let one = p.timer_power_w(1, PollMode::Umwait);
        let four = p.timer_power_w(4, PollMode::Umwait);
        assert!(four - one < one, "3 extra cores must cost less than the first");
    }

    #[test]
    fn observed_power_sets_gauge() {
        let p = PowerModel::default();
        let mut obs = lp_sim::obs::Observer::counters_only();
        let w = p.timer_power_w_observed(2, PollMode::Umwait, &mut obs);
        assert_eq!(obs.metrics().gauge(lp_sim::obs::Gauge::TimerPowerW), w);
        assert!((w - 1.35).abs() < 1e-9);
    }

    #[test]
    fn zero_cores_zero_power() {
        let p = PowerModel::default();
        assert_eq!(p.timer_power_w(0, PollMode::BusySpin), 0.0);
    }
}
