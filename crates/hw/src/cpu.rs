//! Cores, the TSC, and per-core time accounting.
//!
//! Fig. 1 (right) plots "overall CPU time spent in preemption vs.
//! execution", so overhead accounting is a first-class feature of the
//! simulated machine: every simulated core tracks where its cycles went,
//! by category, and experiments read the breakdown directly.

use lp_sim::obs::{Counter, Observer};
use lp_sim::{SimDur, SimTime};

/// Identifies a logical core (hyperthread) of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// The timestamp counter: converts between simulated nanoseconds and TSC
/// cycles at a fixed frequency (the paper pins 1.7 GHz with turbo off).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tsc {
    freq_ghz: f64,
}

impl Default for Tsc {
    fn default() -> Self {
        Tsc { freq_ghz: 1.7 }
    }
}

impl Tsc {
    /// A TSC at `freq_ghz` gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive and finite.
    pub fn new(freq_ghz: f64) -> Self {
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "bad TSC frequency {freq_ghz}"
        );
        Tsc { freq_ghz }
    }

    /// The frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// TSC reading at simulated instant `t`.
    pub fn cycles_at(&self, t: SimTime) -> u64 {
        (t.as_nanos() as f64 * self.freq_ghz).round() as u64
    }

    /// Converts a cycle count to a duration.
    pub fn cycles_to_dur(&self, cycles: u64) -> SimDur {
        SimDur::nanos((cycles as f64 / self.freq_ghz).round() as u64)
    }

    /// Converts a duration to cycles.
    pub fn dur_to_cycles(&self, d: SimDur) -> u64 {
        (d.as_nanos() as f64 * self.freq_ghz).round() as u64
    }
}

/// A core stall/hog window (fault injection, `lp_sim::fault`'s
/// `CoreHog`): while the window is open the core executes straight-line
/// work but services no preemption delivery — interrupts effectively
/// mask until the window closes, exactly the failure interrupt-isolation
/// work guards against. The runtime defers any preemption arrival on a
/// hogged core to the window's end via [`defer`](HogWindow::defer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HogWindow {
    until: Option<SimTime>,
}

impl HogWindow {
    /// No window open.
    pub fn none() -> Self {
        Self::default()
    }

    /// Opens (or extends) a window covering `[now, now + dur]`.
    pub fn begin(&mut self, now: SimTime, dur: SimDur) {
        let end = now + dur;
        self.until = Some(match self.until {
            Some(u) if u > end => u,
            _ => end,
        });
    }

    /// `true` while the window covers `now`.
    pub fn active(&self, now: SimTime) -> bool {
        self.until.is_some_and(|u| u > now)
    }

    /// The earliest instant at or after `at` the core can take a
    /// preemption: `at` itself when no window covers it, else the
    /// window's end.
    pub fn defer(&self, at: SimTime) -> SimTime {
        match self.until {
            Some(u) if u > at => u,
            _ => at,
        }
    }
}

/// Where a core's time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeClass {
    /// Useful request execution.
    Work,
    /// Preemption mechanism: interrupt delivery, handlers, the context
    /// switches it forces (Fig. 1 right's numerator).
    Preemption,
    /// Dispatch/scheduling decisions and queue manipulation.
    Dispatch,
    /// Timer-core polling (LibUtimer's dedicated core).
    TimerPoll,
    /// Kernel activity charged to this core (signal delivery, syscalls).
    Kernel,
}

/// Per-core cycle accounting.
///
/// ```
/// use lp_hw::cpu::{CoreClock, TimeClass};
/// use lp_sim::{SimDur, SimTime};
/// let mut c = CoreClock::new();
/// c.charge(TimeClass::Work, SimDur::micros(90));
/// c.charge(TimeClass::Preemption, SimDur::micros(10));
/// assert_eq!(c.total_charged(), SimDur::micros(100));
/// assert!((c.fraction(TimeClass::Preemption, SimTime::from_nanos(100_000)) - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoreClock {
    work: SimDur,
    preemption: SimDur,
    dispatch: SimDur,
    timer_poll: SimDur,
    kernel: SimDur,
}

impl CoreClock {
    /// A fresh accounting block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `d` to the given class.
    pub fn charge(&mut self, class: TimeClass, d: SimDur) {
        let slot = match class {
            TimeClass::Work => &mut self.work,
            TimeClass::Preemption => &mut self.preemption,
            TimeClass::Dispatch => &mut self.dispatch,
            TimeClass::TimerPoll => &mut self.timer_poll,
            TimeClass::Kernel => &mut self.kernel,
        };
        *slot = slot.saturating_add(d);
    }

    /// Charges `d` and mirrors it into the observer's per-class
    /// `core_*_ns` counters, so the metrics registry carries the same
    /// breakdown report-level consumers read from the clock.
    pub fn charge_observed(&mut self, class: TimeClass, d: SimDur, obs: &mut Observer) {
        self.charge(class, d);
        let counter = match class {
            TimeClass::Work => Counter::CoreWorkNs,
            TimeClass::Preemption => Counter::CorePreemptionNs,
            TimeClass::Dispatch => Counter::CoreDispatchNs,
            TimeClass::TimerPoll => Counter::CoreTimerPollNs,
            TimeClass::Kernel => Counter::CoreKernelNs,
        };
        obs.metrics_mut().add(counter, d.as_nanos());
    }

    /// Time charged to one class.
    pub fn charged(&self, class: TimeClass) -> SimDur {
        match class {
            TimeClass::Work => self.work,
            TimeClass::Preemption => self.preemption,
            TimeClass::Dispatch => self.dispatch,
            TimeClass::TimerPoll => self.timer_poll,
            TimeClass::Kernel => self.kernel,
        }
    }

    /// Sum over all classes.
    pub fn total_charged(&self) -> SimDur {
        self.work + self.preemption + self.dispatch + self.timer_poll + self.kernel
    }

    /// Idle time given the wall-clock `elapsed` on this core.
    pub fn idle(&self, elapsed: SimTime) -> SimDur {
        SimDur::nanos(elapsed.as_nanos()).saturating_sub(self.total_charged())
    }

    /// Fraction of elapsed wall-clock spent in `class`.
    pub fn fraction(&self, class: TimeClass, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.charged(class).as_nanos() as f64 / elapsed.as_nanos() as f64
    }

    /// Preemption overhead normalized to useful work — the y-axis of
    /// Fig. 1 (right).
    pub fn preemption_over_work(&self) -> f64 {
        if self.work.is_zero() {
            return 0.0;
        }
        self.preemption.as_nanos() as f64 / self.work.as_nanos() as f64
    }

    /// Merges another clock into this one (for machine-wide totals).
    pub fn merge(&mut self, other: &CoreClock) {
        self.work += other.work;
        self.preemption += other.preemption;
        self.dispatch += other.dispatch;
        self.timer_poll += other.timer_poll;
        self.kernel += other.kernel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_roundtrip() {
        let tsc = Tsc::default();
        assert_eq!(tsc.freq_ghz(), 1.7);
        let t = SimTime::from_nanos(1_000);
        assert_eq!(tsc.cycles_at(t), 1_700);
        assert_eq!(tsc.cycles_to_dur(1_700), SimDur::nanos(1_000));
        assert_eq!(tsc.dur_to_cycles(SimDur::micros(1)), 1_700);
    }

    #[test]
    #[should_panic(expected = "bad TSC frequency")]
    fn tsc_rejects_zero() {
        Tsc::new(0.0);
    }

    #[test]
    fn clock_accounting() {
        let mut c = CoreClock::new();
        c.charge(TimeClass::Work, SimDur::micros(70));
        c.charge(TimeClass::Preemption, SimDur::micros(7));
        c.charge(TimeClass::Dispatch, SimDur::micros(3));
        assert_eq!(c.charged(TimeClass::Work), SimDur::micros(70));
        assert_eq!(c.total_charged(), SimDur::micros(80));
        assert_eq!(c.idle(SimTime::from_nanos(100_000)), SimDur::micros(20));
        assert!((c.preemption_over_work() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn charge_observed_mirrors_into_counters() {
        let mut c = CoreClock::new();
        let mut obs = Observer::counters_only();
        c.charge_observed(TimeClass::Work, SimDur::micros(70), &mut obs);
        c.charge_observed(TimeClass::Preemption, SimDur::micros(7), &mut obs);
        c.charge_observed(TimeClass::TimerPoll, SimDur::micros(2), &mut obs);
        assert_eq!(obs.metrics().get(Counter::CoreWorkNs), 70_000);
        assert_eq!(obs.metrics().get(Counter::CorePreemptionNs), 7_000);
        assert_eq!(obs.metrics().get(Counter::CoreTimerPollNs), 2_000);
        // The clock itself saw the same charges.
        assert_eq!(c.charged(TimeClass::Work).as_nanos(), 70_000);
        assert_eq!(c.total_charged(), SimDur::micros(79));
    }

    #[test]
    fn clock_merge() {
        let mut a = CoreClock::new();
        a.charge(TimeClass::Work, SimDur::micros(1));
        let mut b = CoreClock::new();
        b.charge(TimeClass::Work, SimDur::micros(2));
        b.charge(TimeClass::Kernel, SimDur::micros(5));
        a.merge(&b);
        assert_eq!(a.charged(TimeClass::Work), SimDur::micros(3));
        assert_eq!(a.charged(TimeClass::Kernel), SimDur::micros(5));
    }

    #[test]
    fn zero_division_guards() {
        let c = CoreClock::new();
        assert_eq!(c.preemption_over_work(), 0.0);
        assert_eq!(c.fraction(TimeClass::Work, SimTime::ZERO), 0.0);
    }

    #[test]
    fn hog_window_defers_and_expires() {
        let mut h = HogWindow::none();
        let t = SimTime::from_nanos;
        assert!(!h.active(t(0)));
        assert_eq!(h.defer(t(50)), t(50));
        h.begin(t(100), SimDur::nanos(200));
        assert!(h.active(t(100)));
        assert!(h.active(t(299)));
        assert!(!h.active(t(300)), "window end is exclusive");
        assert_eq!(h.defer(t(150)), t(300));
        assert_eq!(h.defer(t(300)), t(300));
        assert_eq!(h.defer(t(400)), t(400));
        // A shorter overlapping window never shrinks the deferral.
        h.begin(t(200), SimDur::nanos(10));
        assert_eq!(h.defer(t(250)), t(300));
        // A longer one extends it.
        h.begin(t(250), SimDur::nanos(200));
        assert_eq!(h.defer(t(260)), t(450));
    }

    #[test]
    fn idle_never_negative() {
        let mut c = CoreClock::new();
        c.charge(TimeClass::Work, SimDur::micros(10));
        // Elapsed less than charged (can happen transiently mid-event):
        assert_eq!(c.idle(SimTime::from_nanos(5_000)), SimDur::ZERO);
    }
}
