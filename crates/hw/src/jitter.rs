//! Latency jitter sampling.
//!
//! Real delivery latencies are not constants; the paper's Table IV
//! reports means *and* standard deviations, and Fig. 12 is entirely
//! about jitter. We model each latency as a lognormal around its
//! calibrated base: multiplicative noise matches the long-but-bounded
//! right tails of interrupt-latency distributions and can never go
//! negative.

use lp_sim::SimDur;
use rand::Rng;
use rand::rngs::SmallRng;

/// Samples a jittered latency: `base * exp(sigma * N(0,1))`.
///
/// A `sigma` of 0 returns `base` exactly, keeping tests deterministic.
///
/// ```
/// use lp_hw::jitter::sample;
/// use lp_sim::{rng, SimDur};
/// let mut r = lp_sim::rng::rng(1, 0);
/// let d = sample(&mut r, SimDur::micros(1), 0.05);
/// assert!(d > SimDur::nanos(800) && d < SimDur::nanos(1_250));
/// ```
pub fn sample(rng: &mut SmallRng, base: SimDur, sigma: f64) -> SimDur {
    if sigma == 0.0 || base.is_zero() {
        return base;
    }
    let z = standard_normal(rng);
    base.mul_f64((sigma * z).exp())
}

/// Samples a standard normal via Box–Muller (one value per call; we favor
/// statelessness over speed — the simulator spends its time elsewhere).
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    #[test]
    fn zero_sigma_is_exact() {
        let mut r = rng(7, 0);
        assert_eq!(sample(&mut r, SimDur::micros(3), 0.0), SimDur::micros(3));
    }

    #[test]
    fn zero_base_stays_zero() {
        let mut r = rng(7, 0);
        assert_eq!(sample(&mut r, SimDur::ZERO, 0.5), SimDur::ZERO);
    }

    #[test]
    fn mean_is_near_base_for_small_sigma() {
        let mut r = rng(7, 1);
        let base = SimDur::micros(10);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample(&mut r, base, 0.05).as_nanos()).sum();
        let mean = total as f64 / n as f64;
        // lognormal mean = base * exp(sigma^2/2) ~ base * 1.00125
        assert!(
            (mean - 10_000.0).abs() < 100.0,
            "mean = {mean} ns, expected ~10000"
        );
    }

    #[test]
    fn larger_sigma_widens_spread() {
        let mut r = rng(7, 2);
        let base = SimDur::micros(1);
        let spread = |sigma: f64, r: &mut rand::rngs::SmallRng| {
            let xs: Vec<f64> = (0..5_000)
                .map(|_| sample(r, base, sigma).as_nanos() as f64)
                .collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let s_small = spread(0.02, &mut r);
        let s_big = spread(0.3, &mut r);
        assert!(s_big > 5.0 * s_small, "{s_big} vs {s_small}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(11, 3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
