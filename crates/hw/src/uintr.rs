//! The UINTR architectural model.
//!
//! Implements the user-interrupt state machines of §III-A / Fig. 3 of the
//! paper (and the SDM chapter they summarize):
//!
//! * Each **receiver** thread owns a [`Upid`] (User Posted Interrupt
//!   Descriptor) holding the outstanding-notification (`ON`) and
//!   suppress-notification (`SN`) bits plus the 64-bit posted-interrupt
//!   request bitmap (`PUIR`, one bit per user vector).
//! * Each **sender** thread owns a [`Uitt`] (User Interrupt Target Table)
//!   of [`UittEntry`]s mapping a small index to (UPID, vector);
//!   `SENDUIPI <index>` posts the vector and, unless suppressed or
//!   already outstanding, sends a notification to the receiver's CPU.
//! * Delivery depends on the receiver's state: running with UIF set
//!   (deliverable), running with UIF clear (pends until `UIRET`/`STUI`),
//!   or blocked in the kernel (kernel-assisted wakeup — the slow path the
//!   paper measures as "uintrFd (blocked)" in Table IV).
//!
//! The model is a *pure* state machine — latencies are sampled by the
//! caller from [`HwCosts`](crate::HwCosts) — so its transitions can be
//! unit-tested exhaustively.

use lp_sim::fault::IpiFault;
use lp_sim::obs::{Event, Observer};
use lp_sim::SimTime;

use crate::cpu::CoreId;

/// Maximum user-interrupt vectors per receiver thread (§III-A: "User
/// interrupts have 64 interrupt vectors per thread").
pub const UINTR_VECTORS: u8 = 64;

/// Handle to a registered receiver descriptor inside a [`UintrDomain`].
///
/// Generation-tagged: unregistering a receiver bumps its slot's
/// generation, so a stale handle kept across an unregister/register
/// cycle can never alias the slot's new owner — sends through it report
/// [`SendOutcome::Dropped`] instead of silently signalling a stranger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UpidHandle {
    index: usize,
    gen: u32,
}

impl UpidHandle {
    /// The UPID slot index (stable for the handle's lifetime; reused
    /// slots get a fresh generation, not a fresh index).
    pub fn index(&self) -> usize {
        self.index
    }
}

/// User Posted Interrupt Descriptor — the receiver-side mailbox.
#[derive(Debug, Clone, Default)]
pub struct Upid {
    /// `ON` — an unprocessed notification is outstanding.
    pub outstanding: bool,
    /// `SN` — notifications are suppressed (requests still recorded).
    pub suppress: bool,
    /// `PUIR` — pending user-interrupt request bitmap, bit i = vector i.
    pub pending: u64,
    /// Notification destination: the core the receiver currently runs
    /// on, if any.
    pub ndst: Option<CoreId>,
}

impl Upid {
    /// The architectural state a future send/delivery depends on:
    /// `(ON, SN, PUIR)`. Model checkers hash this to deduplicate
    /// explored states; `ndst` is routing, not protocol state, and is
    /// deliberately excluded.
    pub fn state_key(&self) -> (bool, bool, u64) {
        (self.outstanding, self.suppress, self.pending)
    }
}

/// Scheduling/masking state of a receiver thread at send time. The
/// runtime layer knows this; the architecture reacts to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverState {
    /// On-CPU with user interrupts enabled (`UIF = 1`).
    RunningUifSet,
    /// On-CPU but masked (`UIF = 0`, e.g. inside a user handler).
    RunningUifClear,
    /// Blocked in the kernel (e.g. waiting on `uintr_fd`). Delivery
    /// falls back to an ordinary interrupt that wakes the thread.
    Blocked,
}

/// What `SENDUIPI` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Notification dispatched to a running receiver; a user interrupt
    /// will be delivered after the running-delivery latency.
    NotifiedRunning,
    /// Receiver blocked; kernel-assisted wakeup dispatched (slow path).
    NotifiedBlocked,
    /// Vector recorded but receiver is masked; it will drain on unmask.
    PendedMasked,
    /// Vector recorded; a previous notification is still outstanding, so
    /// no new one is sent (hardware coalescing).
    Coalesced,
    /// Vector recorded but notifications are suppressed (`SN = 1`).
    Suppressed,
    /// The notification will never arrive: the instruction executed but
    /// nothing useful reaches the receiver. The caller must treat this
    /// as a lost preemption (retry, or fall back to the signal path).
    Dropped {
        /// Why the send went nowhere.
        reason: DropReason,
    },
}

/// Why a send produced [`SendOutcome::Dropped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The target receiver was unregistered mid-flight; the UITT entry
    /// is stale and no UPID state was touched.
    Unregistered,
    /// The fault injector dropped the IPI in the fabric; no UPID state
    /// was touched.
    Faulted,
    /// The UPID's `NDST` was stale: the vector posted (and `ON` set),
    /// but the notification was misdirected to the wrong core and will
    /// never reach the handler.
    StaleNdst,
}

/// Error returned for malformed sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UintrError {
    /// The UITT index was out of range or the entry invalid — the
    /// hardware raises `#GP`; we surface it as an error.
    InvalidUittIndex,
    /// The UPID handle does not name a registered receiver.
    StaleUpid,
}

impl std::fmt::Display for UintrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UintrError::InvalidUittIndex => write!(f, "invalid or unset UITT entry"),
            UintrError::StaleUpid => write!(f, "UPID handle no longer registered"),
        }
    }
}

impl std::error::Error for UintrError {}

/// One sender-side UITT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UittEntry {
    /// Target receiver descriptor.
    pub upid: UpidHandle,
    /// User vector 0..64 posted on send.
    pub vector: u8,
}

/// A sender's User Interrupt Target Table.
///
/// The kernel-maintained table that §VII-B identifies as LibPreemptible's
/// security boundary: a sender can only ever signal targets previously
/// installed here.
#[derive(Debug, Clone, Default)]
pub struct Uitt {
    entries: Vec<Option<UittEntry>>,
}

impl Uitt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs an entry, returning its index (the operand to
    /// `SENDUIPI`). Mirrors `uintr_register_sender(2)`.
    pub fn register(&mut self, upid: UpidHandle, vector: u8) -> usize {
        assert!(vector < UINTR_VECTORS, "vector out of range");
        // Reuse a free slot if any.
        if let Some(i) = self.entries.iter().position(Option::is_none) {
            self.entries[i] = Some(UittEntry { upid, vector });
            return i;
        }
        self.entries.push(Some(UittEntry { upid, vector }));
        self.entries.len() - 1
    }

    /// Removes an entry (`uintr_unregister_sender(2)`).
    ///
    /// Removal is by slot, so an index unregistered twice (or never
    /// registered) is a no-op, never a panic. Entries installed for a
    /// receiver that is being torn down should additionally be cleared
    /// with [`purge_upid`](Self::purge_upid) — a stale entry left behind
    /// is harmless (sends through it report [`SendOutcome::Dropped`])
    /// but wastes table space and hides the teardown bug.
    pub fn unregister(&mut self, index: usize) {
        if let Some(e) = self.entries.get_mut(index) {
            *e = None;
        }
    }

    /// Defensively clears every entry targeting `upid`, returning how
    /// many were removed. Call when unregistering a receiver so no
    /// stale sender mapping survives the teardown.
    pub fn purge_upid(&mut self, upid: UpidHandle) -> usize {
        let mut purged = 0;
        for e in &mut self.entries {
            if e.is_some_and(|entry| entry.upid == upid) {
                *e = None;
                purged += 1;
            }
        }
        purged
    }

    /// Looks up a live entry.
    pub fn get(&self, index: usize) -> Option<UittEntry> {
        self.entries.get(index).copied().flatten()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// `true` when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The set of registered receivers plus the send state machine.
///
/// ```
/// use lp_hw::uintr::{ReceiverState, SendOutcome, UintrDomain};
///
/// let mut dom = UintrDomain::new();
/// let receiver = dom.register_receiver();
/// let mut uitt = lp_hw::uintr::Uitt::new();
/// let idx = uitt.register(receiver, 0);
///
/// let entry = uitt.get(idx).unwrap();
/// let out = dom
///     .senduipi(entry, ReceiverState::RunningUifSet)
///     .unwrap();
/// assert_eq!(out, SendOutcome::NotifiedRunning);
/// // The receiver acknowledges and drains the pending vector bitmap.
/// assert_eq!(dom.acknowledge(receiver).unwrap(), 1 << 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UintrDomain {
    upids: Vec<Option<Upid>>,
    /// Per-slot generation, bumped on unregister: a handle is live only
    /// while its generation matches, so slot reuse can never alias.
    gens: Vec<u32>,
}

impl UintrDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a receiver, allocating its UPID
    /// (`uintr_register_handler(2)`). Freed slots are reused, but under
    /// a fresh generation: handles to the previous occupant stay dead.
    pub fn register_receiver(&mut self) -> UpidHandle {
        if let Some(i) = self.upids.iter().position(Option::is_none) {
            self.upids[i] = Some(Upid::default());
            return UpidHandle { index: i, gen: self.gens[i] };
        }
        self.upids.push(Some(Upid::default()));
        self.gens.push(0);
        UpidHandle { index: self.upids.len() - 1, gen: 0 }
    }

    /// Tears down a receiver (`uintr_unregister_handler(2)`); later
    /// sends through stale UITT entries report
    /// [`SendOutcome::Dropped`] with [`DropReason::Unregistered`], and
    /// receiver-side operations fail with [`UintrError::StaleUpid`].
    pub fn unregister_receiver(&mut self, h: UpidHandle) {
        if self.gens.get(h.index) == Some(&h.gen) {
            if let Some(u) = self.upids.get_mut(h.index) {
                if u.take().is_some() {
                    self.gens[h.index] = self.gens[h.index].wrapping_add(1);
                }
            }
        }
    }

    fn upid_mut(&mut self, h: UpidHandle) -> Result<&mut Upid, UintrError> {
        if self.gens.get(h.index) != Some(&h.gen) {
            return Err(UintrError::StaleUpid);
        }
        self.upids
            .get_mut(h.index)
            .and_then(Option::as_mut)
            .ok_or(UintrError::StaleUpid)
    }

    /// Read-only view of a receiver's UPID (`None` once the handle's
    /// generation is stale).
    pub fn upid(&self, h: UpidHandle) -> Option<&Upid> {
        if self.gens.get(h.index) != Some(&h.gen) {
            return None;
        }
        self.upids.get(h.index).and_then(Option::as_ref)
    }

    /// Executes the posting half of `SENDUIPI`: records the vector in
    /// the UPID and decides whether a notification goes out. The caller
    /// translates the outcome into latency using
    /// [`HwCosts`](crate::HwCosts).
    ///
    /// A send through a stale entry (the receiver unregistered
    /// mid-flight) is not an error — the instruction executes and the
    /// notification goes nowhere — so it reports
    /// [`SendOutcome::Dropped`] with [`DropReason::Unregistered`]
    /// instead of silently succeeding or failing the sender.
    pub fn senduipi(
        &mut self,
        entry: UittEntry,
        receiver: ReceiverState,
    ) -> Result<SendOutcome, UintrError> {
        let Ok(upid) = self.upid_mut(entry.upid) else {
            return Ok(SendOutcome::Dropped { reason: DropReason::Unregistered });
        };
        upid.pending |= 1u64 << entry.vector;
        if upid.suppress {
            return Ok(SendOutcome::Suppressed);
        }
        if upid.outstanding {
            return Ok(SendOutcome::Coalesced);
        }
        match receiver {
            ReceiverState::RunningUifSet => {
                upid.outstanding = true;
                Ok(SendOutcome::NotifiedRunning)
            }
            ReceiverState::RunningUifClear => {
                // Notification reaches the core but user-interrupt
                // delivery pends on UIF.
                upid.outstanding = true;
                Ok(SendOutcome::PendedMasked)
            }
            ReceiverState::Blocked => {
                upid.outstanding = true;
                Ok(SendOutcome::NotifiedBlocked)
            }
        }
    }

    /// [`senduipi`](Self::senduipi) plus observability: emits
    /// [`Event::UipiSent`] and, for the non-fast-path outcomes, the
    /// matching event ([`Event::KernelAssistWake`] for a blocked
    /// receiver, [`Event::UipiPended`] for a masked one,
    /// [`Event::UipiSuppressed`] under `SN`). A coalesced send emits
    /// nothing extra here — the extra posted vector surfaces as
    /// `coalesced: true` on the eventual [`Event::UipiDelivered`] from
    /// [`acknowledge_observed`](Self::acknowledge_observed).
    pub fn senduipi_observed(
        &mut self,
        entry: UittEntry,
        receiver: ReceiverState,
        worker: u16,
        at: SimTime,
        obs: &mut Observer,
    ) -> Result<SendOutcome, UintrError> {
        let outcome = self.senduipi(entry, receiver)?;
        emit_send_events(outcome, entry.vector, worker, at, obs);
        Ok(outcome)
    }

    /// [`senduipi`](Self::senduipi) with a pre-sampled fault decision
    /// applied. The decision comes from
    /// [`FaultInjector::ipi`](lp_sim::fault::FaultInjector::ipi) — this
    /// layer stays a pure state machine and never draws randomness.
    ///
    /// * `None` — behaves exactly like [`senduipi`](Self::senduipi)
    ///   (same state transitions, same outcome), so a disabled or
    ///   rate-0.0 plan is byte-identical to no injector.
    /// * [`IpiFault::Drop`] — the fabric loses the IPI: no UPID state
    ///   changes, outcome [`DropReason::Faulted`].
    /// * [`IpiFault::Delay`] — state transitions are normal; the *caller*
    ///   stretches the delivery latency by the fault's duration.
    /// * [`IpiFault::Duplicate`] — the send is issued twice back-to-back;
    ///   the second coalesces into the first's outstanding notification
    ///   (the outcome reported is the first send's).
    /// * [`IpiFault::StuckSn`] — the receiver's `SN` bit sticks set just
    ///   before the send lands, so the vector records but suppresses.
    /// * [`IpiFault::StaleNdst`] — the vector posts (and `ON` sets), but
    ///   the notification is misdirected: [`DropReason::StaleNdst`].
    pub fn senduipi_with_fault(
        &mut self,
        entry: UittEntry,
        receiver: ReceiverState,
        fault: Option<IpiFault>,
    ) -> Result<SendOutcome, UintrError> {
        match fault {
            None | Some(IpiFault::Delay(_)) => self.senduipi(entry, receiver),
            Some(IpiFault::Drop) => Ok(SendOutcome::Dropped { reason: DropReason::Faulted }),
            Some(IpiFault::Duplicate) => {
                let first = self.senduipi(entry, receiver)?;
                let _ = self.senduipi(entry, receiver)?;
                Ok(first)
            }
            Some(IpiFault::StuckSn) => {
                if let Ok(upid) = self.upid_mut(entry.upid) {
                    upid.suppress = true;
                }
                self.senduipi(entry, receiver)
            }
            Some(IpiFault::StaleNdst) => match self.senduipi(entry, receiver)? {
                SendOutcome::Dropped { reason } => Ok(SendOutcome::Dropped { reason }),
                _ => Ok(SendOutcome::Dropped { reason: DropReason::StaleNdst }),
            },
        }
    }

    /// [`senduipi_with_fault`](Self::senduipi_with_fault) plus the same
    /// observability as [`senduipi_observed`](Self::senduipi_observed).
    /// A dropped send still emits [`Event::UipiSent`] (the instruction
    /// executed at the sender) but no delivery-side event; the runtime
    /// emits the corresponding `fault_injected` event itself.
    pub fn senduipi_with_fault_observed(
        &mut self,
        entry: UittEntry,
        receiver: ReceiverState,
        fault: Option<IpiFault>,
        worker: u16,
        at: SimTime,
        obs: &mut Observer,
    ) -> Result<SendOutcome, UintrError> {
        let outcome = self.senduipi_with_fault(entry, receiver, fault)?;
        emit_send_events(outcome, entry.vector, worker, at, obs);
        if matches!(fault, Some(IpiFault::Duplicate)) {
            obs.emit(at, Event::UipiSent { worker, vector: entry.vector });
        }
        Ok(outcome)
    }

    /// Receiver-side delivery: clears `ON`, drains and returns the
    /// pending vector bitmap (the handler sees the highest vector; we
    /// hand back all bits for the runtime to dispatch).
    pub fn acknowledge(&mut self, h: UpidHandle) -> Result<u64, UintrError> {
        let upid = self.upid_mut(h)?;
        upid.outstanding = false;
        Ok(std::mem::take(&mut upid.pending))
    }

    /// [`acknowledge`](Self::acknowledge) plus observability: emits
    /// [`Event::UipiDelivered`] at `at` (the instant the notification
    /// reaches the handler), flagged `coalesced` when more than one
    /// posted vector drains at once. Draining an empty bitmap emits
    /// nothing.
    pub fn acknowledge_observed(
        &mut self,
        h: UpidHandle,
        worker: u16,
        at: SimTime,
        obs: &mut Observer,
    ) -> Result<u64, UintrError> {
        let bits = self.acknowledge(h)?;
        if bits != 0 {
            obs.emit(at, Event::UipiDelivered { worker, coalesced: bits.count_ones() > 1 });
        }
        Ok(bits)
    }

    /// Sets/clears `SN`. The kernel sets `SN` while the receiver is
    /// context-switched out without blocking semantics.
    pub fn set_suppress(&mut self, h: UpidHandle, on: bool) -> Result<(), UintrError> {
        self.upid_mut(h)?.suppress = on;
        Ok(())
    }

    /// Updates the notification destination when the receiver migrates.
    pub fn set_ndst(&mut self, h: UpidHandle, core: Option<CoreId>) -> Result<(), UintrError> {
        self.upid_mut(h)?.ndst = core;
        Ok(())
    }

    /// `true` if the receiver has pending vectors recorded.
    pub fn has_pending(&self, h: UpidHandle) -> bool {
        self.upid(h).map(|u| u.pending != 0).unwrap_or(false)
    }
}

/// The shared event mapping of the observed send paths: every send
/// emits [`Event::UipiSent`]; non-fast-path outcomes add their marker.
/// `NotifiedRunning`, `Coalesced` and `Dropped` emit nothing extra
/// (the drop surfaces through the runtime's `fault_injected` /
/// watchdog events, not a hardware event).
fn emit_send_events(outcome: SendOutcome, vector: u8, worker: u16, at: SimTime, obs: &mut Observer) {
    obs.emit(at, Event::UipiSent { worker, vector });
    match outcome {
        SendOutcome::NotifiedRunning | SendOutcome::Coalesced | SendOutcome::Dropped { .. } => {}
        SendOutcome::NotifiedBlocked => obs.emit(at, Event::KernelAssistWake { worker }),
        SendOutcome::PendedMasked => obs.emit(at, Event::UipiPended { worker }),
        SendOutcome::Suppressed => obs.emit(at, Event::UipiSuppressed { worker }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (UintrDomain, Uitt, UpidHandle, usize) {
        let mut dom = UintrDomain::new();
        let h = dom.register_receiver();
        let mut uitt = Uitt::new();
        let idx = uitt.register(h, 3);
        (dom, uitt, h, idx)
    }

    #[test]
    fn send_to_running_notifies_once_then_coalesces() {
        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::NotifiedRunning
        );
        // Second send before acknowledge: coalesced into the same
        // notification.
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::Coalesced
        );
        assert_eq!(dom.acknowledge(h).unwrap(), 1 << 3);
        // After acknowledge the next send notifies again.
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::NotifiedRunning
        );
    }

    #[test]
    fn suppressed_sends_record_but_do_not_notify() {
        let (mut dom, uitt, h, idx) = setup();
        dom.set_suppress(h, true).unwrap();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::Suppressed
        );
        assert!(dom.has_pending(h));
        dom.set_suppress(h, false).unwrap();
        // Pending bits survive and drain on acknowledge.
        assert_eq!(dom.acknowledge(h).unwrap(), 1 << 3);
    }

    #[test]
    fn blocked_receiver_takes_slow_path() {
        let (mut dom, uitt, _h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(e, ReceiverState::Blocked).unwrap(),
            SendOutcome::NotifiedBlocked
        );
    }

    #[test]
    fn masked_receiver_pends() {
        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifClear).unwrap(),
            SendOutcome::PendedMasked
        );
        assert_eq!(dom.acknowledge(h).unwrap(), 1 << 3);
    }

    #[test]
    fn multiple_vectors_accumulate() {
        let mut dom = UintrDomain::new();
        let h = dom.register_receiver();
        let mut uitt = Uitt::new();
        let i0 = uitt.register(h, 0);
        let i5 = uitt.register(h, 5);
        dom.senduipi(uitt.get(i0).unwrap(), ReceiverState::RunningUifSet)
            .unwrap();
        dom.senduipi(uitt.get(i5).unwrap(), ReceiverState::RunningUifSet)
            .unwrap();
        assert_eq!(dom.acknowledge(h).unwrap(), (1 << 0) | (1 << 5));
        assert!(!dom.has_pending(h));
    }

    #[test]
    fn stale_upid_send_drops_typed() {
        let (mut dom, uitt, h, idx) = setup();
        dom.unregister_receiver(h);
        let e = uitt.get(idx).unwrap();
        // Sending through the stale entry is not an error: the
        // instruction executes and reports where the IPI went (nowhere).
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet),
            Ok(SendOutcome::Dropped { reason: DropReason::Unregistered })
        );
        // Receiver-side operations on the dead handle still error.
        assert_eq!(dom.acknowledge(h), Err(UintrError::StaleUpid));
        assert_eq!(dom.set_suppress(h, true), Err(UintrError::StaleUpid));
        assert!(dom.upid(h).is_none());
    }

    #[test]
    fn uitt_purge_clears_all_entries_for_a_receiver() {
        let mut dom = UintrDomain::new();
        let a = dom.register_receiver();
        let b = dom.register_receiver();
        let mut uitt = Uitt::new();
        let ia0 = uitt.register(a, 0);
        let ib = uitt.register(b, 1);
        let ia7 = uitt.register(a, 7);
        assert_eq!(uitt.purge_upid(a), 2);
        assert!(uitt.get(ia0).is_none());
        assert!(uitt.get(ia7).is_none());
        assert_eq!(uitt.get(ib).unwrap().upid, b);
        assert_eq!(uitt.purge_upid(a), 0, "purge is idempotent");
        assert_eq!(uitt.len(), 1);
    }

    #[test]
    fn uitt_slot_reuse() {
        let mut dom = UintrDomain::new();
        let a = dom.register_receiver();
        let b = dom.register_receiver();
        let mut uitt = Uitt::new();
        let ia = uitt.register(a, 1);
        let ib = uitt.register(b, 2);
        assert_ne!(ia, ib);
        uitt.unregister(ia);
        assert!(uitt.get(ia).is_none());
        let ic = uitt.register(b, 9);
        assert_eq!(ic, ia, "freed slot must be reused");
        assert_eq!(uitt.len(), 2);
    }

    #[test]
    #[should_panic(expected = "vector out of range")]
    fn vector_64_rejected() {
        let mut dom = UintrDomain::new();
        let h = dom.register_receiver();
        let mut uitt = Uitt::new();
        uitt.register(h, 64);
    }

    #[test]
    fn observed_send_emits_schema_events() {
        use lp_sim::obs::{Counter, Observer};
        use lp_sim::SimTime;

        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        let mut obs = Observer::new(16);
        let t = SimTime::from_nanos(100);

        // Fast path: send + second (coalesced) send + delivery.
        dom.senduipi_observed(e, ReceiverState::RunningUifSet, 0, t, &mut obs)
            .unwrap();
        dom.senduipi_observed(e, ReceiverState::RunningUifSet, 0, t, &mut obs)
            .unwrap();
        dom.acknowledge_observed(h, 0, SimTime::from_nanos(500), &mut obs)
            .unwrap();
        assert_eq!(obs.metrics().get(Counter::UipiSent), 2);
        assert_eq!(obs.metrics().get(Counter::UipiDelivered), 1);
        // Both sends posted vector 3: one bit, so not coalesced — fire
        // distinct vectors to see the flag.
        assert_eq!(obs.metrics().get(Counter::UipiCoalesced), 0);

        // Blocked receiver: slow path emits the kernel-assist event.
        dom.senduipi_observed(e, ReceiverState::Blocked, 0, t, &mut obs).unwrap();
        assert_eq!(obs.metrics().get(Counter::KernelAssistWakes), 1);

        // Two different vectors pending at delivery → coalesced.
        let mut uitt2 = Uitt::new();
        let i9 = uitt2.register(h, 9);
        dom.senduipi_observed(uitt2.get(i9).unwrap(), ReceiverState::RunningUifSet, 0, t, &mut obs)
            .unwrap();
        dom.acknowledge_observed(h, 0, SimTime::from_nanos(900), &mut obs).unwrap();
        assert_eq!(obs.metrics().get(Counter::UipiCoalesced), 1);

        // Empty acknowledge emits nothing.
        let before = obs.metrics().get(Counter::UipiDelivered);
        dom.acknowledge_observed(h, 0, SimTime::from_nanos(901), &mut obs).unwrap();
        assert_eq!(obs.metrics().get(Counter::UipiDelivered), before);
    }

    #[test]
    fn upid_slot_reuse_cannot_alias_old_handles() {
        let mut dom = UintrDomain::new();
        let a = dom.register_receiver();
        dom.unregister_receiver(a);
        let b = dom.register_receiver();
        // The slot is reused, but under a new generation: the old
        // handle must not alias the new receiver.
        assert_eq!(a.index(), b.index(), "freed slot must be reused");
        assert_ne!(a, b, "stale handle must not equal the new one");
        assert!(dom.upid(a).is_none());
        assert!(dom.upid(b).is_some());
        // A send addressed to the dead generation drops; the new
        // receiver's mailbox stays untouched.
        let mut uitt = Uitt::new();
        let stale = uitt.register(a, 1);
        assert_eq!(
            dom.senduipi(uitt.get(stale).unwrap(), ReceiverState::RunningUifSet),
            Ok(SendOutcome::Dropped { reason: DropReason::Unregistered })
        );
        assert!(!dom.has_pending(b));
        // Unregistering through the stale handle must not tear down the
        // new occupant either.
        dom.unregister_receiver(a);
        assert!(dom.upid(b).is_some());
    }

    #[test]
    fn fault_free_send_matches_plain_send() {
        let (mut dom, uitt, h, idx) = setup();
        let (mut dom2, ..) = setup();
        let e = uitt.get(idx).unwrap();
        let plain = dom2.senduipi(e, ReceiverState::RunningUifSet).unwrap();
        let faultless = dom.senduipi_with_fault(e, ReceiverState::RunningUifSet, None).unwrap();
        assert_eq!(plain, faultless);
        assert_eq!(dom.upid(h).unwrap().pending, dom2.upid(h).unwrap().pending);
        assert_eq!(dom.upid(h).unwrap().outstanding, dom2.upid(h).unwrap().outstanding);
    }

    #[test]
    fn injected_drop_leaves_no_trace() {
        use lp_sim::fault::IpiFault;
        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi_with_fault(e, ReceiverState::RunningUifSet, Some(IpiFault::Drop)),
            Ok(SendOutcome::Dropped { reason: DropReason::Faulted })
        );
        assert!(!dom.has_pending(h), "a fabric drop must not post the vector");
        assert!(!dom.upid(h).unwrap().outstanding);
        // A retry with no fault succeeds normally.
        assert_eq!(
            dom.senduipi_with_fault(e, ReceiverState::RunningUifSet, None),
            Ok(SendOutcome::NotifiedRunning)
        );
    }

    #[test]
    fn injected_stuck_sn_suppresses_until_repaired() {
        use lp_sim::fault::IpiFault;
        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi_with_fault(e, ReceiverState::RunningUifSet, Some(IpiFault::StuckSn)),
            Ok(SendOutcome::Suppressed)
        );
        assert!(dom.has_pending(h));
        // The watchdog's repair: clear SN, re-send, delivery works.
        dom.set_suppress(h, false).unwrap();
        assert_eq!(
            dom.senduipi_with_fault(e, ReceiverState::RunningUifSet, None),
            Ok(SendOutcome::NotifiedRunning)
        );
        assert_eq!(dom.acknowledge(h).unwrap(), 1 << 3);
    }

    #[test]
    fn injected_stale_ndst_posts_but_drops() {
        use lp_sim::fault::IpiFault;
        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi_with_fault(e, ReceiverState::RunningUifSet, Some(IpiFault::StaleNdst)),
            Ok(SendOutcome::Dropped { reason: DropReason::StaleNdst })
        );
        // The vector posted and ON is set — a retry coalesces (still no
        // delivery), which is what escalates the watchdog to degrade.
        assert!(dom.has_pending(h));
        assert!(dom.upid(h).unwrap().outstanding);
        assert_eq!(
            dom.senduipi_with_fault(e, ReceiverState::RunningUifSet, None),
            Ok(SendOutcome::Coalesced)
        );
        // The signal-path fallback's acknowledge drains everything.
        assert_eq!(dom.acknowledge(h).unwrap(), 1 << 3);
        assert!(!dom.upid(h).unwrap().outstanding);
    }

    #[test]
    fn injected_duplicate_coalesces_and_delivers_once() {
        use lp_sim::fault::IpiFault;
        use lp_sim::obs::{Counter, Observer};
        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        let mut obs = Observer::new(16);
        let out = dom
            .senduipi_with_fault_observed(
                e,
                ReceiverState::RunningUifSet,
                Some(IpiFault::Duplicate),
                0,
                SimTime::from_nanos(10),
                &mut obs,
            )
            .unwrap();
        assert_eq!(out, SendOutcome::NotifiedRunning);
        // Two instructions executed, one notification outstanding, one
        // delivery: duplication is idempotent end to end.
        assert_eq!(obs.metrics().get(Counter::UipiSent), 2);
        assert_eq!(dom.acknowledge(h).unwrap(), 1 << 3);
        assert!(!dom.has_pending(h));
    }
}
