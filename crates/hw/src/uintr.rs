//! The UINTR architectural model.
//!
//! Implements the user-interrupt state machines of §III-A / Fig. 3 of the
//! paper (and the SDM chapter they summarize):
//!
//! * Each **receiver** thread owns a [`Upid`] (User Posted Interrupt
//!   Descriptor) holding the outstanding-notification (`ON`) and
//!   suppress-notification (`SN`) bits plus the 64-bit posted-interrupt
//!   request bitmap (`PUIR`, one bit per user vector).
//! * Each **sender** thread owns a [`Uitt`] (User Interrupt Target Table)
//!   of [`UittEntry`]s mapping a small index to (UPID, vector);
//!   `SENDUIPI <index>` posts the vector and, unless suppressed or
//!   already outstanding, sends a notification to the receiver's CPU.
//! * Delivery depends on the receiver's state: running with UIF set
//!   (deliverable), running with UIF clear (pends until `UIRET`/`STUI`),
//!   or blocked in the kernel (kernel-assisted wakeup — the slow path the
//!   paper measures as "uintrFd (blocked)" in Table IV).
//!
//! The model is a *pure* state machine — latencies are sampled by the
//! caller from [`HwCosts`](crate::HwCosts) — so its transitions can be
//! unit-tested exhaustively.

use lp_sim::obs::{Event, Observer};
use lp_sim::SimTime;

use crate::cpu::CoreId;

/// Maximum user-interrupt vectors per receiver thread (§III-A: "User
/// interrupts have 64 interrupt vectors per thread").
pub const UINTR_VECTORS: u8 = 64;

/// Handle to a registered receiver descriptor inside a [`UintrDomain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UpidHandle(usize);

/// User Posted Interrupt Descriptor — the receiver-side mailbox.
#[derive(Debug, Clone, Default)]
pub struct Upid {
    /// `ON` — an unprocessed notification is outstanding.
    pub outstanding: bool,
    /// `SN` — notifications are suppressed (requests still recorded).
    pub suppress: bool,
    /// `PUIR` — pending user-interrupt request bitmap, bit i = vector i.
    pub pending: u64,
    /// Notification destination: the core the receiver currently runs
    /// on, if any.
    pub ndst: Option<CoreId>,
}

/// Scheduling/masking state of a receiver thread at send time. The
/// runtime layer knows this; the architecture reacts to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverState {
    /// On-CPU with user interrupts enabled (`UIF = 1`).
    RunningUifSet,
    /// On-CPU but masked (`UIF = 0`, e.g. inside a user handler).
    RunningUifClear,
    /// Blocked in the kernel (e.g. waiting on `uintr_fd`). Delivery
    /// falls back to an ordinary interrupt that wakes the thread.
    Blocked,
}

/// What `SENDUIPI` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Notification dispatched to a running receiver; a user interrupt
    /// will be delivered after the running-delivery latency.
    NotifiedRunning,
    /// Receiver blocked; kernel-assisted wakeup dispatched (slow path).
    NotifiedBlocked,
    /// Vector recorded but receiver is masked; it will drain on unmask.
    PendedMasked,
    /// Vector recorded; a previous notification is still outstanding, so
    /// no new one is sent (hardware coalescing).
    Coalesced,
    /// Vector recorded but notifications are suppressed (`SN = 1`).
    Suppressed,
}

/// Error returned for malformed sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UintrError {
    /// The UITT index was out of range or the entry invalid — the
    /// hardware raises `#GP`; we surface it as an error.
    InvalidUittIndex,
    /// The UPID handle does not name a registered receiver.
    StaleUpid,
}

impl std::fmt::Display for UintrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UintrError::InvalidUittIndex => write!(f, "invalid or unset UITT entry"),
            UintrError::StaleUpid => write!(f, "UPID handle no longer registered"),
        }
    }
}

impl std::error::Error for UintrError {}

/// One sender-side UITT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UittEntry {
    /// Target receiver descriptor.
    pub upid: UpidHandle,
    /// User vector 0..64 posted on send.
    pub vector: u8,
}

/// A sender's User Interrupt Target Table.
///
/// The kernel-maintained table that §VII-B identifies as LibPreemptible's
/// security boundary: a sender can only ever signal targets previously
/// installed here.
#[derive(Debug, Clone, Default)]
pub struct Uitt {
    entries: Vec<Option<UittEntry>>,
}

impl Uitt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs an entry, returning its index (the operand to
    /// `SENDUIPI`). Mirrors `uintr_register_sender(2)`.
    pub fn register(&mut self, upid: UpidHandle, vector: u8) -> usize {
        assert!(vector < UINTR_VECTORS, "vector out of range");
        // Reuse a free slot if any.
        if let Some(i) = self.entries.iter().position(Option::is_none) {
            self.entries[i] = Some(UittEntry { upid, vector });
            return i;
        }
        self.entries.push(Some(UittEntry { upid, vector }));
        self.entries.len() - 1
    }

    /// Removes an entry (`uintr_unregister_sender(2)`).
    pub fn unregister(&mut self, index: usize) {
        if let Some(e) = self.entries.get_mut(index) {
            *e = None;
        }
    }

    /// Looks up a live entry.
    pub fn get(&self, index: usize) -> Option<UittEntry> {
        self.entries.get(index).copied().flatten()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// `true` when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The set of registered receivers plus the send state machine.
///
/// ```
/// use lp_hw::uintr::{ReceiverState, SendOutcome, UintrDomain};
///
/// let mut dom = UintrDomain::new();
/// let receiver = dom.register_receiver();
/// let mut uitt = lp_hw::uintr::Uitt::new();
/// let idx = uitt.register(receiver, 0);
///
/// let entry = uitt.get(idx).unwrap();
/// let out = dom
///     .senduipi(entry, ReceiverState::RunningUifSet)
///     .unwrap();
/// assert_eq!(out, SendOutcome::NotifiedRunning);
/// // The receiver acknowledges and drains the pending vector bitmap.
/// assert_eq!(dom.acknowledge(receiver).unwrap(), 1 << 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UintrDomain {
    upids: Vec<Option<Upid>>,
}

impl UintrDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a receiver, allocating its UPID
    /// (`uintr_register_handler(2)`).
    pub fn register_receiver(&mut self) -> UpidHandle {
        if let Some(i) = self.upids.iter().position(Option::is_none) {
            self.upids[i] = Some(Upid::default());
            return UpidHandle(i);
        }
        self.upids.push(Some(Upid::default()));
        UpidHandle(self.upids.len() - 1)
    }

    /// Tears down a receiver (`uintr_unregister_handler(2)`); later sends
    /// through stale UITT entries fail with [`UintrError::StaleUpid`].
    pub fn unregister_receiver(&mut self, h: UpidHandle) {
        if let Some(u) = self.upids.get_mut(h.0) {
            *u = None;
        }
    }

    fn upid_mut(&mut self, h: UpidHandle) -> Result<&mut Upid, UintrError> {
        self.upids
            .get_mut(h.0)
            .and_then(Option::as_mut)
            .ok_or(UintrError::StaleUpid)
    }

    /// Read-only view of a receiver's UPID.
    pub fn upid(&self, h: UpidHandle) -> Option<&Upid> {
        self.upids.get(h.0).and_then(Option::as_ref)
    }

    /// Executes the posting half of `SENDUIPI`: records the vector in
    /// the UPID and decides whether a notification goes out. The caller
    /// translates the outcome into latency using
    /// [`HwCosts`](crate::HwCosts).
    pub fn senduipi(
        &mut self,
        entry: UittEntry,
        receiver: ReceiverState,
    ) -> Result<SendOutcome, UintrError> {
        let upid = self.upid_mut(entry.upid)?;
        upid.pending |= 1u64 << entry.vector;
        if upid.suppress {
            return Ok(SendOutcome::Suppressed);
        }
        if upid.outstanding {
            return Ok(SendOutcome::Coalesced);
        }
        match receiver {
            ReceiverState::RunningUifSet => {
                upid.outstanding = true;
                Ok(SendOutcome::NotifiedRunning)
            }
            ReceiverState::RunningUifClear => {
                // Notification reaches the core but user-interrupt
                // delivery pends on UIF.
                upid.outstanding = true;
                Ok(SendOutcome::PendedMasked)
            }
            ReceiverState::Blocked => {
                upid.outstanding = true;
                Ok(SendOutcome::NotifiedBlocked)
            }
        }
    }

    /// [`senduipi`](Self::senduipi) plus observability: emits
    /// [`Event::UipiSent`] and, for the non-fast-path outcomes, the
    /// matching event ([`Event::KernelAssistWake`] for a blocked
    /// receiver, [`Event::UipiPended`] for a masked one,
    /// [`Event::UipiSuppressed`] under `SN`). A coalesced send emits
    /// nothing extra here — the extra posted vector surfaces as
    /// `coalesced: true` on the eventual [`Event::UipiDelivered`] from
    /// [`acknowledge_observed`](Self::acknowledge_observed).
    pub fn senduipi_observed(
        &mut self,
        entry: UittEntry,
        receiver: ReceiverState,
        worker: u16,
        at: SimTime,
        obs: &mut Observer,
    ) -> Result<SendOutcome, UintrError> {
        let outcome = self.senduipi(entry, receiver)?;
        obs.emit(at, Event::UipiSent { worker, vector: entry.vector });
        match outcome {
            SendOutcome::NotifiedRunning | SendOutcome::Coalesced => {}
            SendOutcome::NotifiedBlocked => obs.emit(at, Event::KernelAssistWake { worker }),
            SendOutcome::PendedMasked => obs.emit(at, Event::UipiPended { worker }),
            SendOutcome::Suppressed => obs.emit(at, Event::UipiSuppressed { worker }),
        }
        Ok(outcome)
    }

    /// Receiver-side delivery: clears `ON`, drains and returns the
    /// pending vector bitmap (the handler sees the highest vector; we
    /// hand back all bits for the runtime to dispatch).
    pub fn acknowledge(&mut self, h: UpidHandle) -> Result<u64, UintrError> {
        let upid = self.upid_mut(h)?;
        upid.outstanding = false;
        Ok(std::mem::take(&mut upid.pending))
    }

    /// [`acknowledge`](Self::acknowledge) plus observability: emits
    /// [`Event::UipiDelivered`] at `at` (the instant the notification
    /// reaches the handler), flagged `coalesced` when more than one
    /// posted vector drains at once. Draining an empty bitmap emits
    /// nothing.
    pub fn acknowledge_observed(
        &mut self,
        h: UpidHandle,
        worker: u16,
        at: SimTime,
        obs: &mut Observer,
    ) -> Result<u64, UintrError> {
        let bits = self.acknowledge(h)?;
        if bits != 0 {
            obs.emit(at, Event::UipiDelivered { worker, coalesced: bits.count_ones() > 1 });
        }
        Ok(bits)
    }

    /// Sets/clears `SN`. The kernel sets `SN` while the receiver is
    /// context-switched out without blocking semantics.
    pub fn set_suppress(&mut self, h: UpidHandle, on: bool) -> Result<(), UintrError> {
        self.upid_mut(h)?.suppress = on;
        Ok(())
    }

    /// Updates the notification destination when the receiver migrates.
    pub fn set_ndst(&mut self, h: UpidHandle, core: Option<CoreId>) -> Result<(), UintrError> {
        self.upid_mut(h)?.ndst = core;
        Ok(())
    }

    /// `true` if the receiver has pending vectors recorded.
    pub fn has_pending(&self, h: UpidHandle) -> bool {
        self.upid(h).map(|u| u.pending != 0).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (UintrDomain, Uitt, UpidHandle, usize) {
        let mut dom = UintrDomain::new();
        let h = dom.register_receiver();
        let mut uitt = Uitt::new();
        let idx = uitt.register(h, 3);
        (dom, uitt, h, idx)
    }

    #[test]
    fn send_to_running_notifies_once_then_coalesces() {
        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::NotifiedRunning
        );
        // Second send before acknowledge: coalesced into the same
        // notification.
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::Coalesced
        );
        assert_eq!(dom.acknowledge(h).unwrap(), 1 << 3);
        // After acknowledge the next send notifies again.
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::NotifiedRunning
        );
    }

    #[test]
    fn suppressed_sends_record_but_do_not_notify() {
        let (mut dom, uitt, h, idx) = setup();
        dom.set_suppress(h, true).unwrap();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::Suppressed
        );
        assert!(dom.has_pending(h));
        dom.set_suppress(h, false).unwrap();
        // Pending bits survive and drain on acknowledge.
        assert_eq!(dom.acknowledge(h).unwrap(), 1 << 3);
    }

    #[test]
    fn blocked_receiver_takes_slow_path() {
        let (mut dom, uitt, _h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(e, ReceiverState::Blocked).unwrap(),
            SendOutcome::NotifiedBlocked
        );
    }

    #[test]
    fn masked_receiver_pends() {
        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifClear).unwrap(),
            SendOutcome::PendedMasked
        );
        assert_eq!(dom.acknowledge(h).unwrap(), 1 << 3);
    }

    #[test]
    fn multiple_vectors_accumulate() {
        let mut dom = UintrDomain::new();
        let h = dom.register_receiver();
        let mut uitt = Uitt::new();
        let i0 = uitt.register(h, 0);
        let i5 = uitt.register(h, 5);
        dom.senduipi(uitt.get(i0).unwrap(), ReceiverState::RunningUifSet)
            .unwrap();
        dom.senduipi(uitt.get(i5).unwrap(), ReceiverState::RunningUifSet)
            .unwrap();
        assert_eq!(dom.acknowledge(h).unwrap(), (1 << 0) | (1 << 5));
        assert!(!dom.has_pending(h));
    }

    #[test]
    fn stale_upid_rejected() {
        let (mut dom, uitt, h, idx) = setup();
        dom.unregister_receiver(h);
        let e = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(e, ReceiverState::RunningUifSet),
            Err(UintrError::StaleUpid)
        );
        assert_eq!(dom.acknowledge(h), Err(UintrError::StaleUpid));
    }

    #[test]
    fn uitt_slot_reuse() {
        let mut dom = UintrDomain::new();
        let a = dom.register_receiver();
        let b = dom.register_receiver();
        let mut uitt = Uitt::new();
        let ia = uitt.register(a, 1);
        let ib = uitt.register(b, 2);
        assert_ne!(ia, ib);
        uitt.unregister(ia);
        assert!(uitt.get(ia).is_none());
        let ic = uitt.register(b, 9);
        assert_eq!(ic, ia, "freed slot must be reused");
        assert_eq!(uitt.len(), 2);
    }

    #[test]
    #[should_panic(expected = "vector out of range")]
    fn vector_64_rejected() {
        let mut dom = UintrDomain::new();
        let h = dom.register_receiver();
        let mut uitt = Uitt::new();
        uitt.register(h, 64);
    }

    #[test]
    fn observed_send_emits_schema_events() {
        use lp_sim::obs::{Counter, Observer};
        use lp_sim::SimTime;

        let (mut dom, uitt, h, idx) = setup();
        let e = uitt.get(idx).unwrap();
        let mut obs = Observer::new(16);
        let t = SimTime::from_nanos(100);

        // Fast path: send + second (coalesced) send + delivery.
        dom.senduipi_observed(e, ReceiverState::RunningUifSet, 0, t, &mut obs)
            .unwrap();
        dom.senduipi_observed(e, ReceiverState::RunningUifSet, 0, t, &mut obs)
            .unwrap();
        dom.acknowledge_observed(h, 0, SimTime::from_nanos(500), &mut obs)
            .unwrap();
        assert_eq!(obs.metrics().get(Counter::UipiSent), 2);
        assert_eq!(obs.metrics().get(Counter::UipiDelivered), 1);
        // Both sends posted vector 3: one bit, so not coalesced — fire
        // distinct vectors to see the flag.
        assert_eq!(obs.metrics().get(Counter::UipiCoalesced), 0);

        // Blocked receiver: slow path emits the kernel-assist event.
        dom.senduipi_observed(e, ReceiverState::Blocked, 0, t, &mut obs).unwrap();
        assert_eq!(obs.metrics().get(Counter::KernelAssistWakes), 1);

        // Two different vectors pending at delivery → coalesced.
        let mut uitt2 = Uitt::new();
        let i9 = uitt2.register(h, 9);
        dom.senduipi_observed(uitt2.get(i9).unwrap(), ReceiverState::RunningUifSet, 0, t, &mut obs)
            .unwrap();
        dom.acknowledge_observed(h, 0, SimTime::from_nanos(900), &mut obs).unwrap();
        assert_eq!(obs.metrics().get(Counter::UipiCoalesced), 1);

        // Empty acknowledge emits nothing.
        let before = obs.metrics().get(Counter::UipiDelivered);
        dom.acknowledge_observed(h, 0, SimTime::from_nanos(901), &mut obs).unwrap();
        assert_eq!(obs.metrics().get(Counter::UipiDelivered), before);
    }

    #[test]
    fn upid_handle_reuse_after_unregister() {
        let mut dom = UintrDomain::new();
        let a = dom.register_receiver();
        dom.unregister_receiver(a);
        let b = dom.register_receiver();
        // Slot is reused; the new receiver starts clean.
        assert_eq!(a, b);
        assert!(!dom.has_pending(b));
    }
}
