//! Reference ("spec") state machine for the UPID posting protocol.
//!
//! A deliberately minimal transcription of the SDM's posting pseudocode
//! for **one** receiver descriptor: three fields (`ON`, `SN`, `PUIR`)
//! and three transitions (post, drain, suppress-toggle). It exists to
//! be an *oracle*: both the exhaustive interleaving checker in
//! `lp-check` (`cargo run -p lp-check -- model`) and the property test
//! in `crates/hw/tests/uintr_spec.rs` replay every operation against
//! [`UintrDomain`](crate::uintr::UintrDomain) *and* this spec and
//! assert the two never disagree — outcome by outcome, bit by bit.
//!
//! Keep this module boring. It must stay simple enough to audit by eye
//! against §II-B / the SDM; any cleverness belongs in the real model in
//! [`uintr`](crate::uintr), where the checkers will catch a divergence.

use crate::uintr::{ReceiverState, SendOutcome, UINTR_VECTORS};

/// The spec's view of one receiver descriptor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecUpid {
    /// `ON` — a notification is outstanding (posted, not yet drained).
    pub on: bool,
    /// `SN` — notifications suppressed; posts are recorded silently.
    pub sn: bool,
    /// `PUIR` — pending user-interrupt request bitmap.
    pub pir: u64,
}

impl SpecUpid {
    /// A freshly registered descriptor: all clear.
    pub fn new() -> Self {
        Self::default()
    }

    /// The posting half of `SENDUIPI`, straight from the pseudocode:
    ///
    /// ```text
    /// PUIR[vector] := 1
    /// if SN = 1:            record only            -> Suppressed
    /// else if ON = 1:       already notified       -> Coalesced
    /// else: ON := 1; notify per receiver state     -> Notified*/Pended
    /// ```
    pub fn send(&mut self, vector: u8, receiver: ReceiverState) -> SendOutcome {
        assert!(vector < UINTR_VECTORS, "vector out of range");
        self.pir |= 1u64 << vector;
        if self.sn {
            return SendOutcome::Suppressed;
        }
        if self.on {
            return SendOutcome::Coalesced;
        }
        self.on = true;
        match receiver {
            ReceiverState::RunningUifSet => SendOutcome::NotifiedRunning,
            ReceiverState::RunningUifClear => SendOutcome::PendedMasked,
            ReceiverState::Blocked => SendOutcome::NotifiedBlocked,
        }
    }

    /// Receiver-side drain: clears `ON`, returns-and-clears `PUIR`.
    pub fn acknowledge(&mut self) -> u64 {
        self.on = false;
        std::mem::take(&mut self.pir)
    }

    /// Kernel toggle of `SN` (descheduled receivers are suppressed).
    pub fn set_suppress(&mut self, on: bool) {
        self.sn = on;
    }

    /// Protocol safety invariant: `ON` is only ever set while at least
    /// one vector is recorded in `PUIR` (a notification with an empty
    /// bitmap would be a phantom interrupt).
    pub fn on_implies_pending(&self) -> bool {
        !self.on || self.pir != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_posting_matrix() {
        let mut s = SpecUpid::new();
        assert_eq!(
            s.send(3, ReceiverState::RunningUifSet),
            SendOutcome::NotifiedRunning
        );
        assert!(s.on && s.pir == 1 << 3);
        assert_eq!(
            s.send(4, ReceiverState::RunningUifSet),
            SendOutcome::Coalesced
        );
        assert_eq!(s.acknowledge(), (1 << 3) | (1 << 4));
        assert!(!s.on && s.pir == 0);
        s.set_suppress(true);
        assert_eq!(
            s.send(0, ReceiverState::RunningUifSet),
            SendOutcome::Suppressed
        );
        assert!(!s.on, "suppressed posts never set ON");
        assert!(s.on_implies_pending());
    }
}
