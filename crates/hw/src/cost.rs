//! Calibrated hardware cost model.
//!
//! Every latency constant the simulator charges lives here, each anchored
//! to a measurement the paper (or the cited prior work) reports. The
//! macro-experiments never reference these numbers directly — they emerge
//! through the queueing dynamics — so the *shape* of every figure is a
//! property of the mechanisms, with these constants setting the scales.

use lp_sim::SimDur;

/// Latency constants for the simulated Sapphire Rapids machine.
///
/// Defaults are calibrated to the paper's own microbenchmarks:
///
/// * Table IV: `uintrFd` ping-pong averages 0.734 us running /
///   2.393 us blocked. A ping-pong round trip is send + deliver +
///   handler, so one-way delivery to a *running* receiver is ~0.4 us and
///   the kernel-assisted blocked path ~2 us.
/// * §IV-B / Shinjuku §4: a user-level (fcontext) switch is tens of ns.
/// * Fig. 1 (left): hardware IPC delivery is ~10x faster than the best
///   software path.
#[derive(Debug, Clone, PartialEq)]
pub struct HwCosts {
    /// Sender-side cost of executing `SENDUIPI` (microcoded MSR-ish
    /// write + UITT walk). Charged to the sending core.
    pub senduipi_issue: SimDur,
    /// One-way user-interrupt delivery latency to a running receiver
    /// with UIF set (posted-interrupt notification + microcode delivery).
    pub uintr_delivery_running: SimDur,
    /// One-way delivery when the receiver is blocked in the kernel: the
    /// UPID notification falls back to an ordinary interrupt that wakes
    /// the thread, which then delivers the pended user interrupt.
    pub uintr_delivery_blocked: SimDur,
    /// Receiver-side cost of user-interrupt handler entry + `UIRET`
    /// (state push/pop, vector dispatch). Charged to the receiving core.
    pub uintr_handler: SimDur,
    /// One-way delivery latency of an ordinary (kernel-mediated) IPI,
    /// including the kernel interrupt path on the receiver. This is the
    /// "regular interrupts" line of Fig. 1 (left).
    pub ipi_delivery: SimDur,
    /// Sender-side cost of writing the APIC ICR to send an IPI (the
    /// mechanism Shinjuku maps into ring 3).
    pub apic_icr_write: SimDur,
    /// Writing a deadline slot (`utimer_arm_deadline`): one cache-line
    /// store that intermittently bounces with the timer core's
    /// polling reads.
    pub deadline_arm: SimDur,
    /// A user-level `fcontext` switch: swap registers + stack pointer.
    pub fcontext_switch: SimDur,
    /// A full kernel thread context switch (scheduler + CR3 + state).
    pub kernel_ctx_switch: SimDur,
    /// Indirect cost added to the *resumed* computation after a context
    /// switch (cache/TLB pollution). Shinjuku's evaluation calls this
    /// out as the dominant hidden preemption cost.
    pub switch_pollution: SimDur,
    /// Granularity of a busy-poll loop reading TSC (LibUtimer's timer
    /// core checks deadlines at this cadence; also Shinjuku's dispatcher
    /// loop iteration time).
    pub poll_loop: SimDur,
    /// Multiplicative jitter applied to all of the above when sampled
    /// (lognormal sigma). Hardware latencies are tight: a few percent.
    pub jitter_sigma: f64,
}

impl Default for HwCosts {
    fn default() -> Self {
        Self::sapphire_rapids()
    }
}

impl HwCosts {
    /// The calibrated Sapphire Rapids model used by every experiment.
    pub fn sapphire_rapids() -> Self {
        HwCosts {
            senduipi_issue: SimDur::nanos(150),
            uintr_delivery_running: SimDur::nanos(400),
            uintr_delivery_blocked: SimDur::nanos(1_900),
            uintr_handler: SimDur::nanos(120),
            ipi_delivery: SimDur::nanos(1_800),
            apic_icr_write: SimDur::nanos(110),
            deadline_arm: SimDur::nanos(30),
            fcontext_switch: SimDur::nanos(40),
            kernel_ctx_switch: SimDur::nanos(1_500),
            switch_pollution: SimDur::nanos(200),
            poll_loop: SimDur::nanos(100),
            jitter_sigma: 0.05,
        }
    }

    /// A pre-UINTR machine: user interrupts unavailable, so the
    /// "LibPreemptible w/o UINTR" fallback (Fig. 8's orange line) pays
    /// ordinary-interrupt costs for preemption delivery.
    pub fn no_uintr() -> Self {
        let mut c = Self::sapphire_rapids();
        // Fallback delivery is a kernel-mediated signal-from-interrupt:
        // notably slower and noisier (see lp-kernel's signal model for
        // the full path; this constant is the hardware share).
        c.uintr_delivery_running = c.ipi_delivery;
        c.uintr_delivery_blocked = c.ipi_delivery * 2;
        c.jitter_sigma = 0.25;
        c
    }

    /// The §VII-C future-work variant: a dedicated hardware timer that
    /// delivers user interrupts directly, with no timer core and no
    /// `SENDUIPI` software issue cost.
    pub fn hw_offload_timer() -> Self {
        let mut c = Self::sapphire_rapids();
        c.senduipi_issue = SimDur::ZERO;
        c.poll_loop = SimDur::ZERO;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv_anchors() {
        let c = HwCosts::default();
        // Round trip to a running receiver (send + deliver + handler)
        // should land near Table IV's 0.734 us uintrFd average.
        let rt = c.senduipi_issue + c.uintr_delivery_running + c.uintr_handler;
        let us = rt.as_micros_f64();
        assert!((0.5..0.9).contains(&us), "running round trip = {us} us");
        // Blocked path near 2.4 us.
        let rtb = c.senduipi_issue + c.uintr_delivery_blocked + c.uintr_handler;
        let usb = rtb.as_micros_f64();
        assert!((1.9..2.7).contains(&usb), "blocked round trip = {usb} us");
    }

    #[test]
    fn uintr_is_order_of_magnitude_faster_than_ipi() {
        let c = HwCosts::default();
        assert!(c.ipi_delivery.as_nanos() >= 4 * c.uintr_delivery_running.as_nanos());
    }

    #[test]
    fn no_uintr_variant_degrades_delivery() {
        let c = HwCosts::no_uintr();
        let base = HwCosts::default();
        assert!(c.uintr_delivery_running > base.uintr_delivery_running);
        assert_eq!(c.fcontext_switch, base.fcontext_switch);
    }

    #[test]
    fn offload_removes_software_costs() {
        let c = HwCosts::hw_offload_timer();
        assert!(c.senduipi_issue.is_zero());
        assert!(c.poll_loop.is_zero());
        assert_eq!(c.uintr_delivery_running, HwCosts::default().uintr_delivery_running);
    }
}
