//! # lp-hw — the simulated Sapphire Rapids machine
//!
//! Hardware substrate for the LibPreemptible reproduction: the pieces of
//! the paper's testbed that are gated on unavailable silicon (UINTR) are
//! modeled here as explicit state machines plus calibrated cost tables.
//!
//! * [`uintr`] — the user-interrupt architecture: UPID/UITT state,
//!   `SENDUIPI` semantics, suppression/coalescing, blocked-receiver
//!   kernel assist (paper §III-A, Fig. 3).
//! * [`HwCosts`] — every latency constant, each anchored to a paper
//!   measurement (Table IV, Fig. 1).
//! * [`cpu`] — cores, the fixed-frequency TSC, and per-core cycle
//!   accounting by [`TimeClass`] (powering Fig. 1-right's overhead
//!   breakdown).
//! * [`jitter`] — lognormal latency noise.
//! * [`power`] — the UMWAIT timer-core power model (§V-B).
//! * [`uintr_spec`] — the audit-by-eye reference state machine the
//!   `lp-check` model checker and the `uintr_spec` property test hold
//!   [`uintr`] to.

#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod jitter;
pub mod power;
pub mod uintr;
pub mod uintr_spec;

pub use cost::HwCosts;
pub use cpu::{CoreClock, CoreId, TimeClass, Tsc};
pub use power::{PollMode, PowerModel};
