//! Trace dump: capture the typed cross-layer event trace of a short
//! run and print it three ways — raw JSONL, the legacy human-readable
//! rendering, and the metrics registry snapshot.
//!
//! ```text
//! cargo run --release --example trace_dump
//! ```
//!
//! The event schema is documented in `docs/TRACING.md`. Tracing is
//! enabled by setting [`RuntimeConfig::trace_capacity`]; the metrics
//! counters are collected on every run regardless.

use libpreemptible::{run, FcfsPreempt, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_sim::obs::{Event, TimedEvent};
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

fn main() {
    // Long constant-service requests under a short quantum: every
    // request gets preempted several times, so the trace shows the full
    // arm → poll → SENDUIPI → delivery → park cycle repeatedly.
    let spec = WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(ServiceDist::Constant(
            SimDur::micros(40),
        ))),
        arrivals: RateSchedule::Constant(20_000.0),
        duration: SimDur::millis(2),
        warmup: SimDur::ZERO,
    };
    let cfg = RuntimeConfig {
        workers: 2,
        trace_capacity: 4096,
        ..RuntimeConfig::default()
    };
    let report = run(cfg, Box::new(FcfsPreempt::fixed(SimDur::micros(10))), spec);

    println!("== events (JSONL, one per line) ==");
    let jsonl = report.events_jsonl();
    for line in jsonl.lines().take(25) {
        println!("{line}");
    }
    if report.events.len() > 25 {
        println!("... {} more", report.events.len() - 25);
    }

    // The JSONL stream round-trips losslessly through the parser.
    let parsed: Vec<TimedEvent> = jsonl
        .lines()
        .map(|l| TimedEvent::parse_jsonl(l).expect("schema round-trip"))
        .collect();
    assert_eq!(parsed, report.events);

    println!("\n== preemption life-cycles (filtered) ==");
    let mut shown = 0;
    for te in &report.events {
        let keep = matches!(
            te.ev,
            Event::DeadlineArmed { .. }
                | Event::UipiSent { .. }
                | Event::UipiDelivered { .. }
                | Event::Preempt { .. }
        );
        if keep {
            println!("{:>10} ns  {}", te.at.as_nanos(), te.ev);
            shown += 1;
            if shown == 16 {
                break;
            }
        }
    }

    println!("\n== metrics registry ==");
    for (name, value) in &report.metrics.counters {
        if *value > 0 {
            println!("  {name:<22} {value}");
        }
    }
    for (name, value) in &report.metrics.gauges {
        println!("  {name:<22} {value}");
    }

    // Counters and run totals are the same numbers by construction.
    assert_eq!(report.metrics.counter("preemptions"), report.preemptions);
    assert_eq!(report.metrics.counter("task_finishes"), report.completions);
    println!(
        "\n{} preemptions across {} completions, {} events captured",
        report.preemptions,
        report.completions,
        report.events.len()
    );
}
