//! Implementing a custom scheduling policy against the LibPreemptible
//! API (§III-F: "LibPreemptible exposes an API for users to easily
//! integrate application-specific scheduling policies").
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```
//!
//! The policy below is written directly against the `SchedPolicy`
//! framework trait (`docs/POLICIES.md`): a *tail-aging escalator* that
//! grants every request a generous slice, but — observing each closed
//! control window — halves the slice it grants when the window's tail
//! deteriorates, aging long requests toward finer-grained sharing
//! while leaving short requests untouched. It is compared against
//! plain preemptive FCFS with the same average quantum. A second
//! example, `policy_placement`, shows the `select_cpu` placement hook.

use libpreemptible::sched::{Dispatch, ResumeSel, SchedCtx, SchedPolicy, TaskView};
use libpreemptible::{run, FcfsPreempt, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_sim::SimDur;
use lp_stats::WindowSummary;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

/// Grants fresh requests a large slice and shrinks it as window tail
/// latency deteriorates — a dozen-line policy, which is the point.
#[derive(Debug)]
struct TailAgingPolicy {
    quantum: SimDur,
}

impl SchedPolicy for TailAgingPolicy {
    fn name(&self) -> &'static str {
        "tail-aging (custom)"
    }

    fn dispatch(&mut self, _cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        // Short-job friendly: always drain fresh requests first, then
        // resume the shortest leftover.
        if ctx.runnable > 0 {
            Dispatch::New
        } else if ctx.parked > 0 {
            Dispatch::Parked(ResumeSel::Srpt)
        } else {
            Dispatch::Idle
        }
    }

    fn time_slice(&mut self, _task: &TaskView, _ctx: &mut SchedCtx<'_>) -> SimDur {
        self.quantum
    }

    fn quantum_hint(&self, _class: u8) -> SimDur {
        self.quantum
    }

    fn on_window(&mut self, s: &WindowSummary) {
        // React to the observed tail: p99 beyond 20x median means
        // head-of-line blocking — tighten; a calm window relaxes.
        self.quantum = if s.p99_ns > 20 * s.median_ns.max(1) {
            (self.quantum / 2).max(SimDur::micros(3))
        } else {
            (self.quantum * 2).min(SimDur::micros(50))
        };
    }
}

fn main() {
    let dist = ServiceDist::workload_a2();
    let rate = dist.rate_for_utilization(0.8, 4);
    let spec = || WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(dist.clone())),
        arrivals: RateSchedule::Constant(rate),
        duration: SimDur::millis(200),
        warmup: SimDur::millis(20),
    };
    let cfg = || RuntimeConfig {
        control_period: SimDur::millis(5),
        ..RuntimeConfig::default()
    };

    let custom = run(cfg(), Box::new(TailAgingPolicy { quantum: SimDur::micros(50) }), spec());
    let fcfs = run(cfg(), Box::new(FcfsPreempt::fixed(SimDur::micros(25))), spec());

    println!("workload A2 at {:.0} kRPS, 4 workers\n", rate / 1_000.0);
    for r in [&fcfs, &custom] {
        println!(
            "{:<40} median {:>7.1} us   p99 {:>8.1} us   preemptions {}",
            r.system,
            r.median_us(),
            r.p99_us(),
            r.preemptions
        );
    }
}
