//! The §V-C scenario as an application: a MICA-style key-value store
//! (latency-critical) sharing cores with zlib compression (best
//! effort), scheduled by LibPreemptible with an adaptive quantum.
//!
//! ```text
//! cargo run --release --example kvs_colocation
//! ```
//!
//! Drives a bursty load (40 → 110 kRPS) and prints the per-phase mean
//! latency of both job classes under three preemption policies —
//! reproducing the trade-off of Fig. 14 from library-user code.

use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
use libpreemptible::{run, FcfsPreempt, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_sim::SimDur;
use lp_workload::{ColocatedWorkload, RateSchedule};

fn main() {
    let schedule = RateSchedule::Square {
        base_rps: 40_000.0,
        base_for: SimDur::millis(150),
        spike_rps: 110_000.0,
        spike_for: SimDur::millis(50),
    };
    let duration = SimDur::millis(800);
    let control = SimDur::millis(10);

    let spec = || WorkloadSpec {
        source: ServiceSource::Colocated(ColocatedWorkload::paper_config()),
        arrivals: schedule.clone(),
        duration,
        warmup: SimDur::millis(50),
    };
    // §V-C colocates on a single worker core (plus the timer core):
    // that is where a 100 us zlib chunk visibly blocks 1 us MICA GETs.
    let cfg = || RuntimeConfig {
        workers: 1,
        control_period: control,
        series_frame: Some(SimDur::millis(25)),
        ..RuntimeConfig::default()
    };

    let adaptive = {
        let mut a = AdaptiveConfig::paper_defaults(110_000.0);
        a.period = control;
        a.t_min = SimDur::micros(10);
        a.t_max = SimDur::micros(50);
        FcfsPreempt::adaptive(QuantumController::new(a, SimDur::micros(50)))
    };

    println!("MICA (98% LC) + zlib (2% BE), bursty 40->110 kRPS, 1 worker\n");
    println!(
        "{:<22} {:>13} {:>12} {:>13} {:>14}",
        "policy", "LC mean (us)", "LC p99 (us)", "BE p99 (us)", "final quantum"
    );
    for (label, policy) in [
        ("no preemption", FcfsPreempt::fixed(SimDur::MAX)),
        ("fixed 50us", FcfsPreempt::fixed(SimDur::micros(50))),
        ("fixed 10us", FcfsPreempt::fixed(SimDur::micros(10))),
        ("adaptive 10-50us", adaptive),
    ] {
        let r = run(cfg(), Box::new(policy), spec());
        assert!(r.is_conserved());
        let lc = r.class_latency(0);
        let be = r.class_latency(1);
        println!(
            "{:<22} {:>13.1} {:>12.1} {:>13.1} {:>14}",
            label,
            lc.mean() / 1_000.0,
            lc.p99() as f64 / 1_000.0,
            be.p99() as f64 / 1_000.0,
            r.final_quantum
        );
    }
    println!("\nPreemption reclaims the core from 100 us zlib chunks within a");
    println!("quantum, so MICA's tail drops by an order of magnitude; the");
    println!("adaptive policy relaxes the quantum when the burst subsides.");
}
