//! The `select_cpu` placement hook: isolating best-effort work on a
//! dedicated worker.
//!
//! ```text
//! cargo run --release --example policy_placement
//! ```
//!
//! The runtime's default placement is join-shortest-queue, which mixes
//! the §V-C colocation workload's 2% zlib jobs (~100s of us each) into
//! every worker's queue. The policy below instead answers the
//! `select_cpu` hook (`docs/POLICIES.md`): best-effort requests
//! (class 1) are pinned to the last worker, latency-critical requests
//! (class 0) go to the shortest of the remaining queues via
//! `ctx.queue_depths`. Every placement is recorded as a
//! `policy_dispatch` trace event whose `explicit` flag says whether
//! the policy chose or the JSQ fallback did.

use libpreemptible::sched::{Dispatch, Enqueue, ResumeSel, SchedCtx, SchedPolicy, TaskView};
use libpreemptible::{run, PreemptMech, RunReport, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_sim::obs::Event;
use lp_sim::SimDur;
use lp_workload::{ColocatedWorkload, RateSchedule};

/// FCFS with class-partitioned placement: class 1 owns the last
/// worker, class 0 load-balances across the rest.
#[derive(Debug)]
struct BePinned {
    slice: SimDur,
}

impl SchedPolicy for BePinned {
    fn name(&self) -> &'static str {
        "be-pinned (placement)"
    }

    fn select_cpu(&mut self, task: &TaskView, ctx: &mut SchedCtx<'_>) -> Option<usize> {
        let last = ctx.queue_depths.len() - 1;
        if task.class == 1 {
            return Some(last);
        }
        // Shortest queue among the LC workers (first-min = lowest id).
        ctx.queue_depths[..last]
            .iter()
            .enumerate()
            .min_by_key(|&(_, d)| d)
            .map(|(w, _)| w)
    }

    fn enqueue(&mut self, _task: &TaskView, _ctx: &mut SchedCtx<'_>) -> Enqueue {
        Enqueue::Back
    }

    fn dispatch(&mut self, _cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        if ctx.runnable > 0 {
            Dispatch::New
        } else if ctx.parked > 0 {
            Dispatch::Parked(ResumeSel::Fifo)
        } else {
            Dispatch::Idle
        }
    }

    fn time_slice(&mut self, _task: &TaskView, _ctx: &mut SchedCtx<'_>) -> SimDur {
        self.slice
    }

    fn quantum_hint(&self, _class: u8) -> SimDur {
        self.slice
    }
}

fn colocated(policy: Box<dyn SchedPolicy>) -> RunReport {
    run(
        RuntimeConfig {
            workers: 4,
            mech: PreemptMech::Uintr,
            control_period: SimDur::millis(5),
            // Keep a trace window so the policy_dispatch events (and
            // their `explicit` placement flag) can be inspected below.
            trace_capacity: 1 << 14,
            // Work stealing would let LC workers pull pinned BE jobs
            // back off the dedicated queue; placement demos disable it.
            work_stealing: false,
            ..RuntimeConfig::default()
        },
        policy,
        WorkloadSpec {
            source: ServiceSource::Colocated(ColocatedWorkload::paper_config()),
            arrivals: RateSchedule::Constant(500_000.0),
            duration: SimDur::millis(100),
            warmup: SimDur::millis(10),
        },
    )
}

fn main() {
    let pinned = colocated(Box::new(BePinned { slice: SimDur::micros(10) }));
    let jsq = colocated(Box::new(libpreemptible::FcfsPreempt::fixed(SimDur::micros(10))));

    let explicit = pinned
        .events
        .iter()
        .filter(|te| matches!(te.ev, Event::PolicyDispatch { explicit: true, .. }))
        .count();
    println!(
        "placements recorded: {} ({} explicit in the trace window)\n",
        pinned.metrics.counter("policy_dispatches"),
        explicit
    );
    for (label, r) in [("jsq (default)", &jsq), ("be-pinned", &pinned)] {
        println!(
            "{:<16} LC p99 {:>8.1} us   BE p99 {:>9.1} us   overall p99 {:>8.1} us",
            label,
            r.class_latency(0).p99() as f64 / 1_000.0,
            r.class_latency(1).p99() as f64 / 1_000.0,
            r.p99_us()
        );
    }
}
