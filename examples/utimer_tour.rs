//! A tour of the low-level building blocks: LibUtimer deadline slots,
//! the timing wheel, and the UINTR architectural state machine — the
//! pieces §IV builds LibPreemptible out of.
//!
//! ```text
//! cargo run --release --example utimer_tour
//! ```

use libpreemptible::utimer::{TimingWheel, UtimerRegistry};
use lp_hw::uintr::{ReceiverState, SendOutcome, UintrDomain, Uitt};
use lp_sim::SimTime;

fn main() {
    // --- LibUtimer deadline slots (utimer_register / arm_deadline) ---
    let mut reg = UtimerRegistry::new();
    let workers: Vec<_> = (0..4).map(|_| reg.register()).collect();
    // Workers arm staggered 5/10/15/20 us deadlines (one cacheline
    // write each — no syscall, which is the whole point).
    for (i, &slot) in workers.iter().enumerate() {
        reg.arm(slot, SimTime::from_nanos(5_000 * (i as u64 + 1)));
    }
    println!("armed {} deadline slots; earliest = {:?}", reg.armed(), reg.next_deadline());

    // The timer core polls the TSC and collects expiries.
    let mut fired = Vec::new();
    for t in [6_000u64, 12_000, 22_000] {
        let now = SimTime::from_nanos(t);
        for slot in reg.expired(now) {
            fired.push((t, slot.index()));
        }
    }
    println!("expiry order (poll-time, worker): {fired:?}");
    assert_eq!(fired.len(), 4);

    // --- Timing wheel for large thread counts (§IV-A, [64]) ---
    let mut wheel = TimingWheel::new(1_000); // 1 us ticks
    for i in 0..1_000u64 {
        wheel.insert(SimTime::from_nanos(1_000 * (i % 97 + 1)), i);
    }
    let due = wheel.advance(SimTime::from_nanos(50_000));
    println!(
        "timing wheel: {} of 1000 deadlines due within 50 us, {} still filed",
        due.len(),
        wheel.len()
    );

    // --- The UINTR state machine underneath (§III-A, Fig. 3) ---
    let mut dom = UintrDomain::new();
    let receiver = dom.register_receiver(); // allocates the UPID
    let mut uitt = Uitt::new(); // the timer core's send table
    let idx = uitt.register(receiver, 0); // vector 0 = "deadline"

    let entry = uitt.get(idx).unwrap();
    let first = dom.senduipi(entry, ReceiverState::RunningUifSet).unwrap();
    let second = dom.senduipi(entry, ReceiverState::RunningUifSet).unwrap();
    println!("first SENDUIPI:  {first:?}");
    println!("second SENDUIPI: {second:?} (hardware coalesces while ON=1)");
    assert_eq!(first, SendOutcome::NotifiedRunning);
    assert_eq!(second, SendOutcome::Coalesced);

    let pending = dom.acknowledge(receiver).unwrap();
    println!("handler drained PUIR bitmap: {pending:#b}");

    // Blocked receivers take the kernel-assisted slow path — the
    // "uintrFd (blocked)" row of Table IV.
    let blocked = dom.senduipi(entry, ReceiverState::Blocked).unwrap();
    println!("send to blocked receiver: {blocked:?}");
    assert_eq!(blocked, SendOutcome::NotifiedBlocked);
}
