//! Replaying a recorded service-time trace through the runtime.
//!
//! ```text
//! cargo run --release --example trace_replay [trace.txt]
//! ```
//!
//! Reads one service time per line (fractional microseconds; `#`
//! comments allowed) — or uses a built-in production-like trace — then
//! (1) reports the trace's dispersion, (2) replays it at 70% load
//! without preemption and under LibPreemptible's adaptive quantum, and
//! (3) prints the tail-latency difference. This is the "bring your own
//! workload" path: everything the synthetic experiments do works on
//! measured data.

use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
use libpreemptible::{
    run, FcfsPreempt, NonPreemptive, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec,
};
use lp_sim::SimDur;
use lp_workload::{EmpiricalDist, PhasedService, RateSchedule, ServiceDist};

/// A production-like default: mostly fast cache hits, a slow-query
/// tail.
const BUILTIN_TRACE: &str = "\
# service times, us
0.8\n1.1\n0.9\n1.3\n0.7\n1.0\n0.8\n250\n0.9\n1.2\n0.8\n1.0\n1.1\n0.9\n420\n1.0\n\
0.7\n0.9\n1.4\n0.8\n1.0\n0.9\n1.1\n0.8\n310\n0.9\n1.0\n1.2\n0.8\n1.1\n0.9\n1.0\n";

fn main() {
    let text = std::env::args()
        .nth(1)
        .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading {p}: {e}")))
        .unwrap_or_else(|| BUILTIN_TRACE.to_string());
    let trace = EmpiricalDist::from_us_lines(&text).expect("parse trace");
    println!(
        "trace: {} samples, mean {}, SCV {:.1} ({})",
        trace.len(),
        trace.mean(),
        trace.scv(),
        if trace.scv() > 10.0 { "heavy-tailed" } else { "light-tailed" },
    );

    // The runtime's ServiceSource is distribution-driven; EmpiricalDist
    // exposes mean/SCV so we mirror the trace with a two-point
    // distribution matching both moments. Among the two-point family we
    // pick the *rare-long* member (0.5% longs, like the paper's A
    // workloads): long = mean * (1 + sqrt(scv * (1-p)/p)).
    let mean_us = trace.mean().as_micros_f64();
    let scv = trace.scv().max(0.01);
    let p = 0.005f64;
    let long = mean_us * (1.0 + (scv * (1.0 - p) / p).sqrt());
    let short = (mean_us - p * long) / (1.0 - p);
    let dist = ServiceDist::Bimodal {
        p_long: p,
        short: SimDur::from_micros_f64(short.max(0.1)),
        long: SimDur::from_micros_f64(long),
    };
    println!("moment-matched surrogate: {dist}\n");

    let workers = 4;
    let rate = dist.rate_for_utilization(0.7, workers);
    let spec = || WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(dist.clone())),
        arrivals: RateSchedule::Constant(rate),
        duration: SimDur::millis(300),
        warmup: SimDur::millis(30),
    };

    let base = run(
        RuntimeConfig {
            workers,
            mech: PreemptMech::None,
            ..RuntimeConfig::default()
        },
        Box::new(NonPreemptive),
        spec(),
    );
    let adaptive = {
        let mut cfg = AdaptiveConfig::paper_defaults(rate / 0.7);
        cfg.period = SimDur::millis(5);
        run(
            RuntimeConfig {
                workers,
                control_period: SimDur::millis(5),
                ..RuntimeConfig::default()
            },
            Box::new(FcfsPreempt::adaptive(QuantumController::new(
                cfg,
                SimDur::micros(20),
            ))),
            spec(),
        )
    };

    println!("replay at {:.0} kRPS on {workers} workers:", rate / 1e3);
    for r in [&base, &adaptive] {
        assert!(r.is_conserved());
        println!(
            "  {:<42} median {:>7.1} us   p99 {:>9.1} us   final quantum {}",
            r.system,
            r.median_us(),
            r.p99_us(),
            r.final_quantum
        );
    }
    println!(
        "\np99 improvement from adaptive preemption: {:.1}x",
        base.p99_us() / adaptive.p99_us()
    );
}
