//! Quickstart: run LibPreemptible on a heavy-tailed workload and watch
//! preemption crush the tail.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Spins up the default runtime (4 workers + 1 timer core, UINTR
//! preemption) on workload A1 (99.5% of requests take 0.5 us, 0.5%
//! take 500 us), first without preemption, then with a 5 us quantum,
//! and prints both latency profiles.

use libpreemptible::{
    run, FcfsPreempt, NonPreemptive, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec,
};
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

fn main() {
    let dist = ServiceDist::workload_a1();
    // 75% utilization across 4 worker cores.
    let rate = dist.rate_for_utilization(0.75, 4);
    let spec = || WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(dist.clone())),
        arrivals: RateSchedule::Constant(rate),
        duration: SimDur::millis(200),
        warmup: SimDur::millis(20),
    };

    println!("workload A1 at {:.0} kRPS on 4 workers\n", rate / 1_000.0);

    let base = run(
        RuntimeConfig {
            mech: PreemptMech::None,
            ..RuntimeConfig::default()
        },
        Box::new(NonPreemptive),
        spec(),
    );
    let preemptive = run(
        RuntimeConfig::default(),
        Box::new(FcfsPreempt::fixed(SimDur::micros(5))),
        spec(),
    );

    for r in [&base, &preemptive] {
        assert!(r.is_conserved(), "request accounting must balance");
        println!("{}", r.system);
        println!("  completions : {}", r.completions);
        println!("  median      : {:>8.1} us", r.median_us());
        println!("  p99         : {:>8.1} us", r.p99_us());
        println!("  p99.9       : {:>8.1} us", r.latency.p999() as f64 / 1e3);
        println!("  preemptions : {}", r.preemptions);
        println!();
    }

    let gain = base.p99_us() / preemptive.p99_us();
    println!("p99 improvement from 5 us preemption: {gain:.1}x");
}
