//! Real preemptible functions — no simulation.
//!
//! ```text
//! cargo run --release --example real_fibers
//! ```
//!
//! Runs the paper's Fig. 7 round-robin scheduler over actual switched
//! stacks (`lp-fibers`): a mix of microsecond-scale "requests" where a
//! few long ones would monopolize the core without preemption. The
//! deadline-checked preemption points play the role of LibUtimer's
//! armed deadlines; completion order shows the head-of-line blocking
//! disappearing as the slice shrinks.

use lp_fibers::RoundRobinRunner;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Spawns 1 long (2 ms) and 8 short (~50 us) "requests"; returns the
/// completion order and the preemption count.
fn run_with_slice(slice: Duration) -> (Vec<&'static str>, u32) {
    let order = Rc::new(RefCell::new(Vec::new()));
    let mut rr = RoundRobinRunner::new(slice);

    let o = order.clone();
    rr.spawn(move |y| {
        let end = Instant::now() + Duration::from_millis(2);
        while Instant::now() < end {
            y.preempt_point();
        }
        o.borrow_mut().push("LONG");
    });
    for _ in 0..8 {
        let o = order.clone();
        rr.spawn(move |y| {
            let end = Instant::now() + Duration::from_micros(50);
            while Instant::now() < end {
                y.preempt_point();
            }
            o.borrow_mut().push("short");
        });
    }
    let stats = rr.run();
    let order = order.borrow().clone();
    (order, stats.preemptions)
}

fn main() {
    println!("9 requests on one core: 1 x 2ms + 8 x 50us\n");
    for (label, slice) in [
        ("10 ms slice (effectively run-to-completion)", Duration::from_millis(10)),
        ("100 us slice", Duration::from_micros(100)),
    ] {
        let start = Instant::now();
        let (order, preemptions) = run_with_slice(slice);
        let long_pos = order.iter().position(|s| *s == "LONG").unwrap();
        println!("{label}:");
        println!("  completion order : {}", order.join(" "));
        println!("  LONG finished    : #{} of 9", long_pos + 1);
        println!("  preemptions      : {preemptions}");
        println!("  wall time        : {:?}\n", start.elapsed());
    }
    println!("With the coarse slice the 2 ms request completes first and");
    println!("every short request waits behind it (head-of-line blocking);");
    println!("with a 100 us slice the shorts finish in their first rounds");
    println!("and the long request is preempted ~20 times.");
}
