//! Liveness across the policy zoo: every policy in
//! `crates/preemptible/src/policies/` must drive the Fig. 2 workload
//! to completion — requests conserved, no stranded fibers, real
//! throughput. A policy that loses a parked fiber (bad `resume_key`,
//! leaked per-task state, a `dispatch` that never resumes) fails here
//! before it can corrupt a tournament artifact.

use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
use libpreemptible::policies::{AdaptiveQuantum, Edf, Fifo, Mlfq, Srpt, Vruntime};
use libpreemptible::sched::SchedPolicy;
use libpreemptible::{run, RunReport, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

/// The Fig. 2 setting: heavy-tailed A1 at moderate load on 4 workers.
fn fig2_run(policy: Box<dyn SchedPolicy>) -> RunReport {
    let dist = ServiceDist::workload_a1();
    let rate = dist.rate_for_utilization(0.75, 4);
    run(
        RuntimeConfig {
            workers: 4,
            control_period: SimDur::millis(2),
            ..RuntimeConfig::default()
        },
        policy,
        WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(dist)),
            arrivals: RateSchedule::Constant(rate),
            duration: SimDur::millis(50),
            warmup: SimDur::millis(5),
        },
    )
}

/// One factory per zoo citizen, tuned like the tournament entrants.
fn zoo() -> Vec<(&'static str, Box<dyn SchedPolicy>)> {
    let mut adaptive = AdaptiveConfig::paper_defaults(1_400_000.0);
    adaptive.period = SimDur::millis(2);
    vec![
        (
            "adaptive-quantum",
            Box::new(AdaptiveQuantum::new(QuantumController::new(
                adaptive,
                SimDur::micros(10),
            ))) as Box<dyn SchedPolicy>,
        ),
        ("edf", Box::new(Edf::new(SimDur::micros(10), SimDur::micros(100), SimDur::millis(1)))),
        ("fifo", Box::new(Fifo::new(SimDur::micros(10)))),
        ("mlfq", Box::new(Mlfq::new(SimDur::micros(5), 4))),
        ("srpt", Box::new(Srpt::new(SimDur::micros(10)))),
        ("vruntime", Box::new(Vruntime::new(SimDur::micros(10)))),
    ]
}

#[test]
fn every_zoo_policy_completes_fig2_with_zero_stranded_fibers() {
    for (name, policy) in zoo() {
        assert_eq!(name, policy.name(), "zoo label vs SchedPolicy::name");
        let r = fig2_run(policy);
        assert!(r.is_conserved(), "{name}: conservation broken");
        // A stranded fiber sits in `in_flight` forever; the natural
        // tail at this load is far below a queue's worth.
        assert!(
            r.in_flight < 64,
            "{name}: {} fibers still in flight at the horizon",
            r.in_flight
        );
        assert!(
            r.completions as f64 > 0.9 * r.arrivals as f64,
            "{name}: only {}/{} completed",
            r.completions,
            r.arrivals
        );
        assert!(r.preemptions > 0, "{name}: never preempted a 500us tail task");
    }
}

#[test]
fn zoo_runs_are_deterministic_per_policy() {
    for mk in [|| zoo().remove(3).1, || zoo().remove(5).1] {
        let a = fig2_run(mk());
        let b = fig2_run(mk());
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.latency.p99(), b.latency.p99());
        assert_eq!(a.events_jsonl(), b.events_jsonl());
    }
}
