//! Property-based fuzzing of the full runtime: random configurations
//! and workloads must always conserve requests, stay deterministic,
//! and keep accounting sane.

use libpreemptible::policy::{FcfsPreempt, NonPreemptive, RoundRobin, SrptOracle};
use libpreemptible::sched::SchedPolicy;
use libpreemptible::{run, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_hw::TimeClass;
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct FuzzCase {
    workers: usize,
    mech: u8,
    policy: u8,
    quantum_us: u64,
    rho_pct: u64,
    dist: u8,
    pool: usize,
    seed: u64,
    stealing: bool,
}

fn case() -> impl Strategy<Value = FuzzCase> {
    (
        1usize..6,
        0u8..4,
        0u8..4,
        1u64..200,
        5u64..140, // up to 1.4x overload
        0u8..4,
        16usize..512,
        0u64..1_000,
        any::<bool>(),
    )
        .prop_map(
            |(workers, mech, policy, quantum_us, rho_pct, dist, pool, seed, stealing)| FuzzCase {
                workers,
                mech,
                policy,
                quantum_us,
                rho_pct,
                dist,
                pool,
                seed,
                stealing,
            },
        )
}

fn build(case: &FuzzCase) -> (RuntimeConfig, Box<dyn SchedPolicy>, WorkloadSpec) {
    let mech = match case.mech {
        0 => PreemptMech::Uintr,
        1 => PreemptMech::TimerCoreSignal,
        2 => PreemptMech::KernelTimerSignal,
        _ => PreemptMech::None,
    };
    let q = SimDur::micros(case.quantum_us);
    let policy: Box<dyn SchedPolicy> = if mech == PreemptMech::None {
        Box::new(NonPreemptive)
    } else {
        match case.policy {
            0 => Box::new(FcfsPreempt::fixed(q)),
            1 => Box::new(RoundRobin::fixed(q)),
            2 => Box::new(SrptOracle::fixed(q)),
            _ => Box::new(NonPreemptive),
        }
    };
    let dist = match case.dist {
        0 => ServiceDist::workload_a1(),
        1 => ServiceDist::workload_b(),
        2 => ServiceDist::Constant(SimDur::micros(7)),
        _ => ServiceDist::Lognormal {
            median: SimDur::micros(2),
            sigma: 1.2,
        },
    };
    let rate = dist.rate_for_utilization(case.rho_pct as f64 / 100.0, case.workers);
    let cfg = RuntimeConfig {
        workers: case.workers,
        mech,
        pool_capacity: case.pool,
        work_stealing: case.stealing,
        seed: case.seed,
        control_period: SimDur::millis(3),
        ..RuntimeConfig::default()
    };
    let spec = WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(dist)),
        arrivals: RateSchedule::Constant(rate.max(1_000.0)),
        duration: SimDur::millis(10),
        warmup: SimDur::millis(1),
    };
    (cfg, policy, spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any configuration conserves requests and keeps per-worker time
    /// accounting within the wall clock.
    #[test]
    fn conservation_and_accounting(case in case()) {
        let (cfg, policy, spec) = build(&case);
        let duration = spec.duration;
        let r = run(cfg, policy, spec);
        prop_assert!(
            r.is_conserved(),
            "{case:?}: {} != {} + {} + {}",
            r.arrivals, r.completions, r.dropped, r.in_flight
        );
        for (i, w) in r.per_worker.iter().enumerate() {
            let total = w.total_charged();
            prop_assert!(
                total <= duration + SimDur::micros(500),
                "{case:?}: worker {i} charged {total} > wall {duration}"
            );
        }
        if r.completions > 0 {
            prop_assert!(r.latency.p99() >= r.latency.median());
            prop_assert!(r.latency.max() >= r.latency.min());
        }
        // Non-preemptive configurations must never preempt.
        if case.mech == 3 {
            prop_assert_eq!(r.preemptions, 0);
        }
    }

    /// Same case → identical reports; the master seed fully determines
    /// the run.
    #[test]
    fn determinism(case in case()) {
        let (cfg_a, pol_a, spec_a) = build(&case);
        let (cfg_b, pol_b, spec_b) = build(&case);
        let a = run(cfg_a, pol_a, spec_a);
        let b = run(cfg_b, pol_b, spec_b);
        prop_assert_eq!(a.arrivals, b.arrivals);
        prop_assert_eq!(a.completions, b.completions);
        prop_assert_eq!(a.dropped, b.dropped);
        prop_assert_eq!(a.preemptions, b.preemptions);
        prop_assert_eq!(a.spurious_preemptions, b.spurious_preemptions);
        prop_assert_eq!(a.latency.p99(), b.latency.p99());
        prop_assert_eq!(
            a.cores.charged(TimeClass::Work).as_nanos(),
            b.cores.charged(TimeClass::Work).as_nanos()
        );
    }
}
