//! Markdown link hygiene: every relative link in the top-level and
//! `docs/` markdown must resolve to a file (or directory) in the
//! tree, and every `#fragment` must match a heading of the target
//! file (slugified the way GitHub does). Docs drift — a renamed file,
//! a moved doc, a reworded heading — fails here instead of shipping a
//! dead link.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The markdown files whose links are checked, relative to the
/// workspace root.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![
        root.join("README.md"),
        root.join("DESIGN.md"),
        root.join("EXPERIMENTS.md"),
        root.join("ROADMAP.md"),
    ];
    let docs = root.join("docs");
    let mut entries: Vec<_> = std::fs::read_dir(&docs)
        .expect("docs/ directory")
        .map(|e| e.expect("readable docs/ entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    entries.sort();
    files.extend(entries);
    files.retain(|p| p.exists());
    files
}

/// Extracts the `](target)` part of every inline markdown link in
/// `text`. Good enough for this repo's docs: no reference-style links,
/// no angle brackets, no nested parentheses in targets.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find("](") {
        let tail = &rest[open + 2..];
        let Some(close) = tail.find(')') else { break };
        out.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    out
}

/// GitHub's heading-anchor slug: lowercase; keep letters, digits,
/// `-`, `_`; spaces become `-`; everything else (backticks, em
/// dashes, parens, …) is dropped. Duplicate headings get `-1`, `-2`,
/// … suffixes.
fn slugify(heading: &str) -> String {
    let mut slug = String::new();
    for c in heading.trim().chars() {
        if c.is_alphanumeric() || c == '-' || c == '_' {
            slug.extend(c.to_lowercase());
        } else if c == ' ' {
            slug.push('-');
        }
    }
    slug
}

/// Every anchor a markdown file exposes: its ATX headings, slugified,
/// with GitHub's duplicate-suffix rule applied.
fn anchors_of(text: &str) -> BTreeSet<String> {
    let mut seen: Vec<String> = Vec::new();
    let mut anchors = BTreeSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let heading = line.trim_start_matches('#');
        if !line
            .chars()
            .skip_while(|&c| c == '#')
            .next()
            .is_some_and(|c| c == ' ')
        {
            continue;
        }
        let slug = slugify(heading);
        let dups = seen.iter().filter(|s| **s == slug).count();
        anchors.insert(if dups == 0 {
            slug.clone()
        } else {
            format!("{slug}-{dups}")
        });
        seen.push(slug);
    }
    anchors
}

#[test]
fn relative_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    let mut checked = 0usize;
    let mut anchors_checked = 0usize;
    for file in doc_files(root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().expect("doc file has a parent");
        for target in link_targets(&text) {
            // External links and mail are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, fragment) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (target.as_str(), None),
            };
            // Resolve the target file: in-page anchors point at the
            // doc itself.
            let resolved = if path_part.is_empty() {
                file.clone()
            } else {
                checked += 1;
                let p = dir.join(path_part);
                if !p.exists() {
                    broken.push(format!("{}: ]({})", file.display(), target));
                    continue;
                }
                p
            };
            // Validate the fragment against the target's headings.
            if let Some(frag) = fragment {
                if resolved.extension().is_none_or(|e| e != "md") {
                    continue;
                }
                anchors_checked += 1;
                let target_text = std::fs::read_to_string(&resolved)
                    .unwrap_or_else(|e| panic!("read {}: {e}", resolved.display()));
                if !anchors_of(&target_text).contains(frag) {
                    broken.push(format!(
                        "{}: ]({}) — no heading in {} slugifies to `#{}`",
                        file.display(),
                        target,
                        resolved.display(),
                        frag
                    ));
                }
            }
        }
    }
    assert!(
        checked > 20,
        "only {checked} relative links found — the extractor regressed"
    );
    assert!(
        anchors_checked > 3,
        "only {anchors_checked} #fragment links found — the anchor check regressed"
    );
    assert!(
        broken.is_empty(),
        "broken relative markdown links:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn slugify_matches_github_examples() {
    assert_eq!(
        slugify(" lp-check race — happens-before race detection"),
        "lp-check-race--happens-before-race-detection"
    );
    assert_eq!(
        slugify(" Resilience layer (`lp_sim::fault` + runtime watchdog)"),
        "resilience-layer-lp_simfault--runtime-watchdog"
    );
    assert_eq!(slugify(" The policy tournament"), "the-policy-tournament");
}
