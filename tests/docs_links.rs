//! Markdown link hygiene: every relative link in the top-level and
//! `docs/` markdown must resolve to a file (or directory) in the
//! tree. Docs drift — a renamed file, a moved doc — fails here
//! instead of shipping a dead link.

use std::path::{Path, PathBuf};

/// The markdown files whose links are checked, relative to the
/// workspace root.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![
        root.join("README.md"),
        root.join("DESIGN.md"),
        root.join("EXPERIMENTS.md"),
        root.join("ROADMAP.md"),
    ];
    let docs = root.join("docs");
    let mut entries: Vec<_> = std::fs::read_dir(&docs)
        .expect("docs/ directory")
        .map(|e| e.expect("readable docs/ entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    entries.sort();
    files.extend(entries);
    files.retain(|p| p.exists());
    files
}

/// Extracts the `](target)` part of every inline markdown link in
/// `text`. Good enough for this repo's docs: no reference-style links,
/// no angle brackets, no nested parentheses in targets.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find("](") {
        let tail = &rest[open + 2..];
        let Some(close) = tail.find(')') else { break };
        out.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    out
}

#[test]
fn relative_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in doc_files(root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().expect("doc file has a parent");
        for target in link_targets(&text) {
            // External links, mail, and in-page anchors are out of
            // scope; strip a fragment from relative targets.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(path_part).exists() {
                broken.push(format!("{}: ]({})", file.display(), target));
            }
        }
    }
    assert!(
        checked > 20,
        "only {checked} relative links found — the extractor regressed"
    );
    assert!(
        broken.is_empty(),
        "broken relative markdown links:\n  {}",
        broken.join("\n  ")
    );
}
