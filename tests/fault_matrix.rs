//! The fault matrix: every single-fault scenario from `docs/FAULTS.md`
//! run end-to-end through the runtime with the lost-preemption watchdog
//! enabled.
//!
//! Each scenario must (a) terminate with zero stranded fibers — request
//! conservation holds and nothing is left in flight beyond the natural
//! tail, (b) emit a coherent `fault_injected` →
//! (`preempt_retry` | `mech_degraded`) event chain per victim worker,
//! and (c) with faults disabled, be byte-identical to a run that never
//! heard of fault injection.

use libpreemptible::{run, FcfsPreempt, PreemptMech, RunReport, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_sim::fault::{FaultKind, FaultPlan};
use lp_sim::obs::Event;
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

/// Long constant-service tasks under a short quantum: every task needs
/// many preemptions, so a broken delivery path strands fibers fast.
fn preempt_heavy_spec(ms: u64) -> WorkloadSpec {
    WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(ServiceDist::Constant(
            SimDur::micros(400),
        ))),
        arrivals: RateSchedule::Constant(8_000.0),
        duration: SimDur::millis(ms),
        warmup: SimDur::ZERO,
    }
}

fn faulty_run(mech: PreemptMech, faults: FaultPlan) -> RunReport {
    run(
        RuntimeConfig {
            workers: 4,
            mech,
            control_period: SimDur::millis(10),
            // Large enough to hold the whole run's trace: the policy
            // vocabulary (policy_dispatch / slice_granted) roughly
            // doubles the per-request event count.
            trace_capacity: 1 << 17,
            faults,
            ..RuntimeConfig::default()
        },
        Box::new(FcfsPreempt::fixed(SimDur::micros(20))),
        preempt_heavy_spec(60),
    )
}

/// Scenario postconditions shared by the whole matrix.
///
/// "Zero stranded fibers" is conservation plus a bounded tail: whatever
/// was injected, every arrival is accounted for and the in-flight
/// residue at the horizon is no more than a queue's worth of natural
/// tail — a stranded fiber would sit in `in_flight` forever.
fn assert_no_stranded_fibers(name: &str, r: &RunReport) {
    assert!(r.is_conserved(), "{name}: conservation broken");
    assert!(
        r.in_flight < 50,
        "{name}: {} fibers still in flight at the horizon",
        r.in_flight
    );
    assert!(r.completions > 100, "{name}: only {} completions", r.completions);
}

/// Every recovery event must trace back to an injected fault on the
/// same worker, and at least one injected fault must have provoked the
/// watchdog (a retry or a degradation) on its worker.
fn assert_fault_chains(name: &str, r: &RunReport) {
    assert!(
        r.metrics.counter("faults_injected") > 0,
        "{name}: injector never fired"
    );
    let mut faulted_workers = Vec::new();
    let mut chained = false;
    for te in &r.events {
        match te.ev {
            Event::FaultInjected { worker, .. } => {
                if !faulted_workers.contains(&worker) {
                    faulted_workers.push(worker);
                }
            }
            Event::PreemptRetry { worker, .. } | Event::MechDegraded { worker, .. } => {
                assert!(
                    faulted_workers.contains(&worker),
                    "{name}: watchdog acted on worker {worker} with no prior injected fault"
                );
                chained = true;
            }
            _ => {}
        }
    }
    assert!(
        chained,
        "{name}: no fault_injected -> (preempt_retry | mech_degraded) chain in the trace"
    );
    assert_eq!(
        r.metrics.counter("preempt_retries") + r.metrics.counter("mech_degradations"),
        r.events
            .iter()
            .filter(|te| {
                matches!(te.ev, Event::PreemptRetry { .. } | Event::MechDegraded { .. })
            })
            .count() as u64,
        "{name}: counters disagree with the trace"
    );
}

#[test]
fn dropped_ipi_degrades_and_keeps_preempting() {
    let r = faulty_run(PreemptMech::Uintr, FaultPlan::only(FaultKind::IpiDrop, 1.0));
    assert_no_stranded_fibers("ipi_drop", &r);
    assert_fault_chains("ipi_drop", &r);
    // Total loss of the fast path: all four workers degrade to signals
    // and stay there (every probe is dropped too).
    assert_eq!(r.metrics.counter("mech_degradations"), 4);
    assert_eq!(r.metrics.counter("mech_recoveries"), 0);
    assert!(r.preemptions > 0, "signal fallback never preempted");
}

#[test]
fn stuck_sn_is_repaired_or_degraded() {
    let r = faulty_run(PreemptMech::Uintr, FaultPlan::only(FaultKind::StuckSn, 1.0));
    assert_no_stranded_fibers("stuck_sn", &r);
    assert_fault_chains("stuck_sn", &r);
    // A stuck suppress bit suppresses every notification; the watchdog
    // must notice the silence and keep the system preempting.
    assert!(r.preemptions > 0);
    assert!(r.metrics.counter("preempt_retries") > 0);
}

#[test]
fn missed_timer_expiries_are_resent() {
    let r = faulty_run(
        PreemptMech::KernelTimerSignal,
        FaultPlan::only(FaultKind::TimerMiss, 1.0),
    );
    assert_no_stranded_fibers("timer_miss", &r);
    assert_fault_chains("timer_miss", &r);
    // No UINTR in this stack, so no degradation ladder — just retries.
    assert!(r.metrics.counter("preempt_retries") > 0);
    assert_eq!(r.metrics.counter("mech_degradations"), 0);
    assert!(r.preemptions > 0, "watchdog never recovered a missed expiry");
}

#[test]
fn lost_signals_are_retried_until_they_land() {
    // 80% of signals vanish: the watchdog's capped-backoff re-sends are
    // the only reason preemption still works.
    let r = faulty_run(
        PreemptMech::TimerCoreSignal,
        FaultPlan::only(FaultKind::SignalLost, 0.8),
    );
    assert_no_stranded_fibers("signal_lost", &r);
    assert_fault_chains("signal_lost", &r);
    assert!(r.metrics.counter("preempt_retries") > 0);
    assert!(r.preemptions > 0);
}

#[test]
fn core_hogs_defer_but_never_lose_preemptions() {
    // The hog decision is per started slice and each hog adds its full
    // 200us window to the victim's remaining work, so the rate must
    // keep expected stall below quantum-sized progress or service time
    // diverges. 2% of 20us slices ≈ +4us expected stall per slice.
    let r = faulty_run(PreemptMech::Uintr, FaultPlan::only(FaultKind::CoreHog, 0.02));
    assert_no_stranded_fibers("core_hog", &r);
    assert_fault_chains("core_hog", &r);
    // A 200us stall window swallows the quantum several times over; the
    // deferred delivery plus watchdog re-sends must still preempt.
    assert!(r.preemptions > 0);
}

#[test]
fn disabled_faults_leave_results_byte_identical() {
    // The whole injection apparatus must be invisible when the plan is
    // disabled: same stats, same metrics, and a byte-identical event
    // stream — the same guarantee that keeps the checked-in results/
    // CSVs stable.
    let mk = |faults: FaultPlan| faulty_run(PreemptMech::Uintr, faults);
    let a = mk(FaultPlan::disabled());
    let b = mk(FaultPlan::disabled());
    assert_eq!(a.events_jsonl(), b.events_jsonl());
    assert_eq!(a.metrics.counters, b.metrics.counters);

    // And an *armed* plan that can never fire (unreachable occurrence)
    // builds the injector + watchdogs yet changes nothing observable.
    let armed = mk(FaultPlan::once(FaultKind::IpiDrop, u64::MAX));
    assert_eq!(a.events_jsonl(), armed.events_jsonl());
    assert_eq!(a.metrics.counters, armed.metrics.counters);
    assert_eq!(a.arrivals, armed.arrivals);
    assert_eq!(a.completions, armed.completions);
    assert_eq!(a.latency.p99(), armed.latency.p99());
    assert_eq!(armed.metrics.counter("faults_injected"), 0);
}
