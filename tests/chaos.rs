//! Chaos-adversary and overload-hardening invariants (`docs/CHAOS.md`):
//!
//! * the retry backoff never overflows and is monotone up to its cap;
//! * under every pinned corpus plan the per-worker mechanism-tier
//!   trace is legal — brownout is entered from healthy, recovery only
//!   leaves the degraded tier, and the admission gate sheds instead of
//!   stranding fibers;
//! * the committed regression corpus (`results/chaos_corpus.json`)
//!   replays to its pinned scores, and the hardened runtime beats the
//!   unhardened worst case on every entry;
//! * an armed-but-idle admission gate is byte-identical to a disabled
//!   one.

use libpreemptible::retry::{Backoff, Tier};
use libpreemptible::runtime::{run, AdmissionConfig, RuntimeConfig};
use libpreemptible::{FcfsPreempt, RunReport};
use lp_chaos::{corpus, evaluate, runtime_config, CorpusEntry};
use lp_sim::obs::Event;
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};
use proptest::prelude::*;

use libpreemptible::runtime::{ServiceSource, WorkloadSpec};

fn pinned_corpus() -> Vec<CorpusEntry> {
    let raw = std::fs::read_to_string("results/chaos_corpus.json")
        .expect("results/chaos_corpus.json is committed");
    corpus::from_json(&raw).expect("corpus parses")
}

proptest! {
    /// `Backoff::delay` never panics or overflows: for any `base <=
    /// cap` (up to minutes) and any attempt counter (the full `u32`
    /// range — far past anything the watchdog reaches), the delay is
    /// monotone non-decreasing and saturates exactly at the cap.
    #[test]
    fn backoff_is_monotone_and_saturates(
        base_ns in 1u64..100_000_000,
        extra_ns in 0u64..100_000_000,
        attempt in 0u32..=u32::MAX - 1,
    ) {
        let base = SimDur::nanos(base_ns);
        let cap = SimDur::nanos(base_ns + extra_ns);
        let b = Backoff::new(base, cap);
        let d0 = b.delay(attempt);
        let d1 = b.delay(attempt + 1);
        prop_assert!(d0 >= base.min(cap));
        prop_assert!(d0 <= cap, "delay {d0} above cap {cap}");
        prop_assert!(d1 >= d0, "delay not monotone: {d0} then {d1}");
        // Past 63 doublings the shift saturates: the delay must sit
        // exactly at the cap, not wrap.
        if attempt >= 63 {
            prop_assert_eq!(d0, cap);
        }
    }
}

/// Replays one worker's mechanism events and checks tier legality:
/// brownout is announced only from the healthy tier, degrade from
/// healthy or brownout, recovery only from degraded. Returns how many
/// transitions were seen.
fn check_tier_trace(events: &[(u16, &'static str)], worker: u16) -> usize {
    let mut tier = Tier::Healthy;
    let mut seen = 0;
    for &(w, name) in events {
        if w != worker {
            continue;
        }
        seen += 1;
        match name {
            "mech_brownout" => {
                assert_eq!(
                    tier,
                    Tier::Healthy,
                    "worker {worker}: brownout announced from {tier:?}"
                );
                tier = Tier::Brownout;
            }
            "mech_degraded" => {
                assert_ne!(
                    tier,
                    Tier::Degraded,
                    "worker {worker}: degrade announced twice"
                );
                tier = Tier::Degraded;
            }
            "mech_recovered" => {
                assert_eq!(
                    tier,
                    Tier::Degraded,
                    "worker {worker}: recovery announced from {tier:?}"
                );
                tier = Tier::Healthy;
            }
            _ => unreachable!(),
        }
    }
    seen
}

/// Under every pinned corpus plan, the hardened runtime's mechanism
/// tiers move monotonically through legal transitions
/// (healthy → brownout → degraded → healthy) and no fiber is stranded.
#[test]
fn corpus_plans_drive_legal_tier_transitions() {
    for entry in pinned_corpus() {
        let lowered = lp_chaos::lower(&entry.plan, entry.cfg.base_rps, entry.cfg.horizon_us);
        let cfg = RuntimeConfig {
            trace_capacity: 65_536,
            ..runtime_config(&entry.plan, &entry.cfg, true)
        };
        let spec = WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(ServiceDist::Constant(
                SimDur::micros(entry.cfg.service_us),
            ))),
            arrivals: lowered.arrivals,
            duration: SimDur::micros(entry.cfg.horizon_us),
            warmup: SimDur::ZERO,
        };
        let workers = cfg.workers;
        let r = run(
            cfg,
            Box::new(FcfsPreempt::fixed(SimDur::micros(entry.cfg.quantum_us))),
            spec,
        );
        assert!(r.is_conserved(), "{}: stranded fibers", entry.name);
        let mech: Vec<(u16, &'static str)> = r
            .events
            .iter()
            .filter_map(|te| match te.ev {
                Event::MechBrownout { worker, .. } => Some((worker, "mech_brownout")),
                Event::MechDegraded { worker, .. } => Some((worker, "mech_degraded")),
                Event::MechRecovered { worker } => Some((worker, "mech_recovered")),
                _ => None,
            })
            .collect();
        for w in 0..workers {
            check_tier_trace(&mech, w as u16);
        }
    }
}

/// The committed corpus holds at least three minimized cliffs, each
/// replaying byte-identically to its pinned scores, with the hardened
/// runtime strictly beating the unhardened worst case and conservation
/// holding on both sides.
#[test]
fn corpus_replays_and_hardening_beats_every_cliff() {
    let entries = pinned_corpus();
    assert!(entries.len() >= 3, "corpus has {} entries", entries.len());
    for e in &entries {
        let u = evaluate(&e.plan, &e.cfg, false);
        let h = evaluate(&e.plan, &e.cfg, true);
        assert_eq!(
            (u.objective(), u.worst_ns),
            (e.unhardened_objective, e.unhardened_worst_ns),
            "{}: unhardened drifted",
            e.name
        );
        assert_eq!(
            (h.objective(), h.worst_ns),
            (e.hardened_objective, e.hardened_worst_ns),
            "{}: hardened drifted",
            e.name
        );
        assert!(u.conserved && h.conserved, "{}: conservation broken", e.name);
        assert!(
            h.worst_ns < u.worst_ns,
            "{}: hardened worst {} >= unhardened worst {}",
            e.name,
            h.worst_ns,
            u.worst_ns
        );
    }
}

/// The corpus text form round-trips every committed plan.
#[test]
fn corpus_plans_round_trip_through_the_text_form() {
    for e in pinned_corpus() {
        let text = corpus::plan_to_text(&e.plan);
        let back = corpus::plan_from_text(&text).expect("parses");
        assert_eq!(back, e.plan, "{}: {} did not round-trip", e.name, text);
    }
}

fn healthy_run(admission: AdmissionConfig) -> RunReport {
    run(
        RuntimeConfig {
            workers: 4,
            control_period: SimDur::millis(10),
            trace_capacity: 4_096,
            admission,
            ..RuntimeConfig::default()
        },
        Box::new(FcfsPreempt::fixed(SimDur::micros(20))),
        WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(ServiceDist::Constant(
                SimDur::micros(400),
            ))),
            arrivals: RateSchedule::Constant(8_000.0),
            duration: SimDur::millis(60),
            warmup: SimDur::ZERO,
        },
    )
}

/// Arming the admission gate on a healthy run — caps never reached,
/// every worker on the fast path — leaves the run byte-identical to
/// one with admission disabled: same trace, same counters, same
/// latency distribution. This is the contract the < 2% lp-bench
/// overhead gate rides on.
#[test]
fn armed_but_idle_admission_is_byte_identical() {
    let off = healthy_run(AdmissionConfig::default());
    let on = healthy_run(AdmissionConfig {
        enabled: true,
        queue_cap: usize::MAX,
        brownout_cap: usize::MAX,
        slo_aware: false,
    });
    assert_eq!(off.arrivals, on.arrivals);
    assert_eq!(off.completions, on.completions);
    assert_eq!(off.dropped, on.dropped);
    assert_eq!(off.preemptions, on.preemptions);
    assert_eq!(off.latency.p99(), on.latency.p99());
    assert_eq!(off.latency.max(), on.latency.max());
    assert_eq!(off.metrics.counters, on.metrics.counters);
    assert_eq!(off.events_jsonl(), on.events_jsonl());
    assert_eq!(on.metrics.counter("sheds"), 0);
    assert_eq!(on.metrics.counter("admissions"), 0);
}
