//! Integration tests of the mechanism stack below the runtime:
//! UINTR + kernel models composed the way the library composes them.

use lp_hw::uintr::{ReceiverState, SendOutcome, UintrDomain, Uitt};
use lp_hw::HwCosts;
use lp_kernel::{IpcLatency, IpcMechanism, KernelCosts, KernelTimer, SignalPath};
use lp_sim::rng::rng;
use lp_sim::{SimDur, SimTime};
use lp_stats::Histogram;

/// The Fig. 1 story told through the composed models: the UINTR path
/// assembled from HwCosts beats the calibrated kernel signal path by
/// an order of magnitude, and both reproduce their Table IV anchors.
#[test]
fn hardware_vs_software_delivery_gap() {
    let ipc = IpcLatency::new(HwCosts::default());
    let mut r = rng(1, 0);
    let mut uintr = Histogram::new();
    let mut signal = Histogram::new();
    for _ in 0..50_000 {
        uintr.record(ipc.sample(IpcMechanism::UintrFd, &mut r).as_nanos());
        signal.record(ipc.sample(IpcMechanism::Signal, &mut r).as_nanos());
    }
    let gap = signal.mean() / uintr.mean();
    assert!(gap > 10.0, "signal/uintr mean gap = {gap:.1}");
    // Jitter too: the hardware path is far tighter.
    assert!(signal.stddev() > 4.0 * uintr.stddev());
}

/// A full LibUtimer "tick" against the architectural model: arm, poll,
/// send, coalesce, acknowledge — across multiple workers.
#[test]
fn utimer_tick_through_uintr_state_machine() {
    let mut dom = UintrDomain::new();
    let mut uitt = Uitt::new();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let upid = dom.register_receiver();
            (upid, uitt.register(upid, 0))
        })
        .collect();

    // Timer core finds all 8 deadlines expired in one poll; sends are
    // serialized but every worker must end up notified exactly once.
    for &(_, idx) in &workers {
        let entry = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(entry, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::NotifiedRunning
        );
    }
    // A second poll tick re-sends before handlers ran: all coalesce.
    for &(_, idx) in &workers {
        let entry = uitt.get(idx).unwrap();
        assert_eq!(
            dom.senduipi(entry, ReceiverState::RunningUifSet).unwrap(),
            SendOutcome::Coalesced
        );
    }
    // Handlers drain; each sees vector 0 pending exactly once.
    for &(upid, _) in &workers {
        assert_eq!(dom.acknowledge(upid).unwrap(), 1);
    }
    for &(upid, _) in &workers {
        assert!(!dom.has_pending(upid));
    }
}

/// The kernel-timer + signal path that limits Libinger: a 5 us request
/// cannot be honored (floor), and storms contend.
#[test]
fn kernel_path_floor_and_contention() {
    let costs = KernelCosts::default();
    let mut t = KernelTimer::new(costs.clone(), rng(2, 0));
    t.arm(SimDur::micros(5));
    let mut h = Histogram::new();
    for _ in 0..2_000 {
        h.record(t.sample_expiry().as_nanos());
    }
    // Asked for 5us, got the floor.
    assert!(h.mean() > 40_000.0, "mean expiry {} ns", h.mean());

    let mut path = SignalPath::new(costs, rng(3, 0));
    let storm: Vec<_> = (0..16).map(|_| path.deliver(SimTime::ZERO)).collect();
    let lone = path.deliver(SimTime::ZERO + SimDur::millis(10));
    assert!(
        storm.last().unwrap().latency > lone.latency * 4,
        "storm tail {} vs lone {}",
        storm.last().unwrap().latency,
        lone.latency
    );
}

/// Histograms merged across worker shards equal a single global
/// histogram — the pattern the runtime uses for per-class stats.
#[test]
fn sharded_stats_compose() {
    let mut shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
    let mut global = Histogram::new();
    let mut r = rng(4, 0);
    let ipc = IpcLatency::new(HwCosts::default());
    for i in 0..10_000u64 {
        let v = ipc
            .sample(IpcMechanism::MessageQueue, &mut r)
            .as_nanos();
        shards[(i % 4) as usize].record(v);
        global.record(v);
    }
    let mut merged = Histogram::new();
    for s in &shards {
        merged.merge(s);
    }
    assert_eq!(merged.count(), global.count());
    assert_eq!(merged.p99(), global.p99());
    assert_eq!(merged.median(), global.median());
}
