//! Cross-layer observability integration tests: the typed event trace
//! and metrics registry against the runtime's own accounting.
//!
//! The schema contract lives in `docs/TRACING.md`; these tests pin the
//! three properties the tracing layer guarantees:
//!
//! 1. the preemption life-cycle appears in causal order
//!    (arm → poll → SENDUIPI → delivery → context switch);
//! 2. the counters agree with [`RunReport`]'s run totals — they are the
//!    same increments by construction, not a parallel bookkeeping;
//! 3. the JSONL export is lossless and byte-deterministic per seed.

use libpreemptible::{
    run, FcfsPreempt, PreemptMech, RunReport, RuntimeConfig, ServiceSource, WorkloadSpec,
};
use lp_hw::TimeClass;
use lp_sim::obs::{Event, TimedEvent};
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

fn preempt_heavy_spec() -> WorkloadSpec {
    WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(ServiceDist::Constant(
            SimDur::micros(50),
        ))),
        arrivals: RateSchedule::Constant(20_000.0),
        duration: SimDur::millis(5),
        warmup: SimDur::ZERO,
    }
}

fn traced_cfg(mech: PreemptMech) -> RuntimeConfig {
    RuntimeConfig {
        workers: 2,
        mech,
        trace_capacity: 1 << 16,
        ..RuntimeConfig::default()
    }
}

fn traced_run(mech: PreemptMech) -> RunReport {
    run(
        traced_cfg(mech),
        Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
        preempt_heavy_spec(),
    )
}

#[test]
fn preemption_round_trip_is_causally_ordered() {
    let r = traced_run(PreemptMech::Uintr);
    assert!(r.preemptions > 10, "need preemptions to trace");

    // Find a full cycle for one worker: deadline_armed, then the poll
    // that fires it, the SENDUIPI, the delivery, and the context
    // switch, appearing in that ring order at non-decreasing times.
    // (The ring is in emission order; a handful of events are stamped
    // at their future effect instant — delivery, task start — so only
    // per-cycle ordering is guaranteed, not global sortedness.)
    let evs = &r.events;
    let armed_idx = evs
        .iter()
        .position(|te| matches!(te.ev, Event::DeadlineArmed { slot: 0, .. }))
        .expect("worker 0 armed a deadline");
    let rest = &evs[armed_idx..];
    let poll_idx = rest
        .iter()
        .position(|te| matches!(te.ev, Event::TimerPoll { expired } if expired > 0))
        .expect("a poll fired it");
    let rest = &rest[poll_idx..];
    let sent_idx = rest
        .iter()
        .position(|te| matches!(te.ev, Event::UipiSent { worker: 0, .. }))
        .expect("SENDUIPI to worker 0");
    let rest = &rest[sent_idx..];
    let delivered_idx = rest
        .iter()
        .position(|te| matches!(te.ev, Event::UipiDelivered { worker: 0, .. }))
        .expect("delivery at worker 0");
    let rest = &rest[delivered_idx..];
    let preempt_idx = rest
        .iter()
        .position(|te| matches!(te.ev, Event::Preempt { worker: 0, .. }))
        .expect("delivery must be followed by the context switch");
    let cycle = [
        evs[armed_idx],
        evs[armed_idx + poll_idx],
        evs[armed_idx + poll_idx + sent_idx],
        evs[armed_idx + poll_idx + sent_idx + delivered_idx],
        evs[armed_idx + poll_idx + sent_idx + delivered_idx + preempt_idx],
    ];
    for w in cycle.windows(2) {
        assert!(w[0].at <= w[1].at, "cycle out of order: {:?} {:?}", w[0], w[1]);
    }

    // Every delivered UIPI was sent first.
    let sent = r.metrics.counter("uipi_sent");
    let delivered = r.metrics.counter("uipi_delivered");
    assert!(sent > 0 && delivered <= sent, "sent {sent} delivered {delivered}");
}

#[test]
fn counters_match_run_report_totals() {
    for mech in [
        PreemptMech::Uintr,
        PreemptMech::TimerCoreSignal,
        PreemptMech::KernelTimerSignal,
    ] {
        let r = traced_run(mech);
        let m = &r.metrics;
        assert_eq!(m.counter("arrivals"), r.arrivals, "{mech:?}");
        assert_eq!(m.counter("drops"), r.dropped, "{mech:?}");
        assert_eq!(m.counter("task_finishes"), r.completions, "{mech:?}");
        assert_eq!(m.counter("preemptions"), r.preemptions, "{mech:?}");
        assert_eq!(
            m.counter("spurious_preemptions"),
            r.spurious_preemptions,
            "{mech:?}"
        );
        // Fault-free causality: every issued preemption produces
        // exactly one arrival, which either lands on its run or is
        // spurious. Landings park or retire a task, never less than
        // the park count.
        assert_eq!(
            m.counter("preempts_issued"),
            m.counter("preempts_landed") + r.spurious_preemptions,
            "{mech:?}"
        );
        assert!(
            m.counter("preempts_landed") >= r.preemptions,
            "{mech:?}"
        );
        // task_starts = first launches + resumptions after preemption.
        assert_eq!(
            m.counter("task_starts"),
            m.counter("task_resumes") + r.completions + r.in_flight_started(&r.events),
            "{mech:?}"
        );
        match mech {
            PreemptMech::Uintr => {
                assert_eq!(m.counter("uipi_sent"), r.preemptions + r.spurious_preemptions);
                assert_eq!(m.counter("signals_sent"), 0);
            }
            PreemptMech::TimerCoreSignal | PreemptMech::KernelTimerSignal => {
                assert_eq!(m.counter("uipi_sent"), 0);
                assert!(m.counter("signals_sent") > 0);
            }
            PreemptMech::None => unreachable!(),
        }
    }
}

/// Helper trait: contexts started but neither finished nor currently
/// preempted-and-parked are the in-flight ones whose first start has no
/// matching finish. Counted from the trace itself.
trait InFlightStarts {
    fn in_flight_started(&self, events: &[TimedEvent]) -> u64;
}

impl InFlightStarts for RunReport {
    fn in_flight_started(&self, events: &[TimedEvent]) -> u64 {
        let first_starts = events
            .iter()
            .filter(|te| matches!(te.ev, Event::TaskStart { resumed: false, .. }))
            .count() as u64;
        // first_starts = completions + still-running-or-parked at end.
        first_starts.saturating_sub(self.completions)
    }
}

#[test]
fn core_time_counters_mirror_core_clocks() {
    let r = traced_run(PreemptMech::Uintr);
    let m = &r.metrics;
    assert_eq!(
        m.counter("core_work_ns"),
        r.cores.charged(TimeClass::Work).as_nanos()
    );
    assert_eq!(
        m.counter("core_dispatch_ns"),
        r.cores.charged(TimeClass::Dispatch).as_nanos()
    );
    assert_eq!(
        m.counter("core_kernel_ns"),
        r.cores.charged(TimeClass::Kernel).as_nanos()
    );
    // Preemption time is charged on the workers AND the timer core
    // (SENDUIPI issue); `cores` aggregates workers + dispatcher only.
    assert_eq!(
        m.counter("core_preemption_ns"),
        (r.cores.charged(TimeClass::Preemption)
            + r.timer_core.charged(TimeClass::Preemption))
        .as_nanos()
    );
    // The timer core's idle-fill poll time is synthesized after the run
    // (not an emission point), so the counter stays at the polls the
    // model observed — zero here.
    assert_eq!(m.counter("core_timer_poll_ns"), 0);
    assert!(m.counter("core_work_ns") > 0);
}

#[test]
fn jsonl_round_trips_and_is_deterministic() {
    let a = traced_run(PreemptMech::Uintr);
    let b = traced_run(PreemptMech::Uintr);

    // Byte-identical export for identical seeds.
    let ja = a.events_jsonl();
    assert_eq!(ja, b.events_jsonl(), "same seed must give identical traces");
    assert_eq!(a.metrics, b.metrics);
    assert!(!ja.is_empty());

    // Lossless parse.
    let parsed: Vec<TimedEvent> = ja
        .lines()
        .map(|l| TimedEvent::parse_jsonl(l).expect("valid schema line"))
        .collect();
    assert_eq!(parsed, a.events);

    // A different seed diverges.
    let c = run(
        RuntimeConfig {
            seed: 7,
            ..traced_cfg(PreemptMech::Uintr)
        },
        Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
        preempt_heavy_spec(),
    );
    assert_ne!(ja, c.events_jsonl());
}

#[test]
fn tracing_disabled_still_counts() {
    let r = run(
        RuntimeConfig {
            trace_capacity: 0,
            ..traced_cfg(PreemptMech::Uintr)
        },
        Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
        preempt_heavy_spec(),
    );
    assert!(r.events.is_empty());
    assert_eq!(r.events_jsonl(), "");
    // The registry is always on.
    assert_eq!(r.metrics.counter("arrivals"), r.arrivals);
    assert_eq!(r.metrics.counter("preemptions"), r.preemptions);
    assert!(r.preemptions > 0);
}

#[test]
fn trace_does_not_change_the_schedule() {
    // Observability is passive: enabling the ring must not perturb the
    // simulation (no RNG draws, no cost charges).
    let traced = traced_run(PreemptMech::Uintr);
    let untraced = run(
        RuntimeConfig {
            trace_capacity: 0,
            ..traced_cfg(PreemptMech::Uintr)
        },
        Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
        preempt_heavy_spec(),
    );
    assert_eq!(traced.arrivals, untraced.arrivals);
    assert_eq!(traced.completions, untraced.completions);
    assert_eq!(traced.preemptions, untraced.preemptions);
    assert_eq!(traced.latency.p99(), untraced.latency.p99());
    assert_eq!(traced.metrics, untraced.metrics);
}
