//! Cross-crate integration tests: the paper's qualitative claims,
//! checked end-to-end through the full stack (workload generator →
//! runtime → machine model → statistics).

use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
use libpreemptible::{
    run, FcfsPreempt, NonPreemptive, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec,
};
use lp_baselines::{run_shinjuku, ShinjukuConfig};
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

fn spec(dist: ServiceDist, rate: f64, ms: u64) -> WorkloadSpec {
    WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(dist)),
        arrivals: RateSchedule::Constant(rate),
        duration: SimDur::millis(ms),
        warmup: SimDur::millis(ms / 10),
    }
}

/// §V-A headline: under high load on the heavy-tailed workload,
/// LibPreemptible's tail is several times better than Shinjuku's
/// (the paper reports ~10x at paper scale).
#[test]
fn libpreemptible_tail_beats_shinjuku_under_high_load() {
    let dist = ServiceDist::workload_a1();
    let lp = run(
        RuntimeConfig {
            workers: 4,
            control_period: SimDur::millis(5),
            ..RuntimeConfig::default()
        },
        Box::new(FcfsPreempt::adaptive(QuantumController::new(
            {
                let mut a = AdaptiveConfig::paper_defaults(dist.rate_for_utilization(1.0, 4));
                a.period = SimDur::millis(5);
                a
            },
            SimDur::micros(10),
        ))),
        spec(dist.clone(), dist.rate_for_utilization(0.9, 4), 120),
    );
    let sj = run_shinjuku(
        ShinjukuConfig {
            workers: 5,
            quantum: SimDur::micros(5),
            ..ShinjukuConfig::default()
        },
        spec(dist.clone(), dist.rate_for_utilization(0.9, 5), 120),
    );
    assert!(lp.is_conserved() && sj.is_conserved());
    assert!(
        sj.p99_us() > 4.0 * lp.p99_us(),
        "Shinjuku p99 {:.1} vs LibPreemptible {:.1}",
        sj.p99_us(),
        lp.p99_us()
    );
    assert!(
        sj.median_us() > 4.0 * lp.median_us(),
        "Shinjuku median {:.1} vs LibPreemptible {:.1}",
        sj.median_us(),
        lp.median_us()
    );
}

/// Fig. 8's ablation: disabling UINTR (ordinary timed interrupts)
/// degrades the tail under high load by a large factor (paper: >5x).
#[test]
fn no_uintr_ablation_degrades_tail() {
    let dist = ServiceDist::workload_a1();
    let rate = dist.rate_for_utilization(0.9, 4);
    let mk = |mech| {
        run(
            RuntimeConfig {
                workers: 4,
                mech,
                ..RuntimeConfig::default()
            },
            Box::new(FcfsPreempt::fixed(SimDur::micros(5))),
            spec(dist.clone(), rate, 120),
        )
    };
    let with = mk(PreemptMech::Uintr);
    let without = mk(PreemptMech::TimerCoreSignal);
    assert!(
        without.p99_us() > 2.0 * with.p99_us(),
        "w/o UINTR p99 {:.1} vs with {:.1}",
        without.p99_us(),
        with.p99_us()
    );
}

/// Determinism across the whole stack: same seed, same report; a
/// different seed perturbs the sample paths.
#[test]
fn end_to_end_determinism() {
    let dist = ServiceDist::workload_a2();
    let rate = dist.rate_for_utilization(0.7, 4);
    let mk = |seed| {
        run(
            RuntimeConfig {
                seed,
                ..RuntimeConfig::default()
            },
            Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
            spec(dist.clone(), rate, 60),
        )
    };
    let a = mk(42);
    let b = mk(42);
    let c = mk(43);
    assert_eq!(a.arrivals, b.arrivals);
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.preemptions, b.preemptions);
    assert_eq!(a.latency.p99(), b.latency.p99());
    assert_eq!(a.latency.mean(), b.latency.mean());
    assert_ne!(
        (a.arrivals, a.latency.p99()),
        (c.arrivals, c.latency.p99()),
        "different seeds should differ"
    );
}

/// Conservation across every system and mechanism at several loads.
#[test]
fn request_conservation_everywhere() {
    let dist = ServiceDist::workload_a1();
    for rho in [0.3, 0.8, 1.2] {
        for mech in [
            PreemptMech::Uintr,
            PreemptMech::TimerCoreSignal,
            PreemptMech::KernelTimerSignal,
            PreemptMech::None,
        ] {
            let rate = dist.rate_for_utilization(rho, 4);
            let policy: Box<dyn libpreemptible::SchedPolicy> = if mech == PreemptMech::None {
                Box::new(NonPreemptive)
            } else {
                Box::new(FcfsPreempt::fixed(SimDur::micros(10)))
            };
            let r = run(
                RuntimeConfig {
                    workers: 4,
                    mech,
                    pool_capacity: 2_048,
                    ..RuntimeConfig::default()
                },
                policy,
                spec(dist.clone(), rate, 40),
            );
            assert!(
                r.is_conserved(),
                "mech {mech:?} rho {rho}: arrivals {} != completions {} + dropped {} + in-flight {}",
                r.arrivals,
                r.completions,
                r.dropped,
                r.in_flight
            );
        }
        let r = run_shinjuku(
            ShinjukuConfig::default(),
            spec(dist.clone(), dist.rate_for_utilization(rho, 5), 40),
        );
        assert!(r.is_conserved(), "shinjuku rho {rho}");
    }
}

/// §III-B: the 3 us minimum time slice is usable — the runtime
/// survives and makes progress with quanta at the UINTR floor.
#[test]
fn three_microsecond_quantum_functions() {
    let dist = ServiceDist::Exponential {
        mean: SimDur::micros(20),
    };
    let r = run(
        RuntimeConfig {
            workers: 4,
            ..RuntimeConfig::default()
        },
        Box::new(FcfsPreempt::fixed(SimDur::micros(3))),
        spec(dist.clone(), dist.rate_for_utilization(0.6, 4), 60),
    );
    assert!(r.is_conserved());
    assert!(r.preemptions > r.completions, "20us work at 3us quanta must preempt repeatedly");
    // Still delivers reasonable latency despite aggressive slicing.
    assert!(r.median_us() < 100.0, "median {}", r.median_us());
}

/// The adaptive controller converges: on a persistently light-tailed
/// workload the quantum drifts up; on a heavy-tailed one it drifts to
/// the floor.
#[test]
fn controller_tracks_workload_character() {
    let mk = |dist: ServiceDist, rho: f64| {
        let rate = dist.rate_for_utilization(rho, 4);
        let mut a = AdaptiveConfig::paper_defaults(dist.rate_for_utilization(1.0, 4));
        a.period = SimDur::millis(2);
        run(
            RuntimeConfig {
                workers: 4,
                control_period: SimDur::millis(2),
                ..RuntimeConfig::default()
            },
            Box::new(FcfsPreempt::adaptive(QuantumController::new(
                a,
                SimDur::micros(20),
            ))),
            spec(dist, rate, 80),
        )
    };
    // The controller is a closed loop: once preemption tames the
    // tail, the *measured* latency dispersion shrinks and the quantum
    // may relax again. The invariant is the controlled outcome —
    // the heavy-tailed workload's p99 stays microseconds-scale, with
    // active preemption — not a particular quantum endpoint.
    let heavy = mk(ServiceDist::workload_a1(), 0.8);
    assert!(
        heavy.p99_us() < 40.0,
        "controller failed to tame the A1 tail: p99 = {}",
        heavy.p99_us()
    );
    assert!(heavy.preemptions > 0);
    // The service-time SCV keeps the window classified heavy even once
    // latency is controlled, so the quantum converges to the floor.
    assert!(
        heavy.final_quantum <= SimDur::micros(5),
        "quantum should sit at the floor, got {}",
        heavy.final_quantum
    );
    let light = mk(
        ServiceDist::Constant(SimDur::micros(5)),
        0.05, // low load
    );
    assert!(
        light.final_quantum > SimDur::micros(20),
        "light load must relax the quantum, got {}",
        light.final_quantum
    );
}
