//! Property-based fuzzing of the baseline systems.

use lp_baselines::{run_libinger, run_shinjuku, LibingerConfig, ShinjukuConfig};
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};
use libpreemptible::runtime::{ServiceSource, WorkloadSpec};
use proptest::prelude::*;

fn dist(which: u8) -> ServiceDist {
    match which {
        0 => ServiceDist::workload_a1(),
        1 => ServiceDist::workload_a2(),
        2 => ServiceDist::workload_b(),
        _ => ServiceDist::Constant(SimDur::micros(12)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shinjuku conserves requests across quanta, loads, and worker
    /// counts — including overload and quantum = infinity.
    #[test]
    fn shinjuku_conserves(
        workers in 1usize..8,
        quantum_us in prop_oneof![Just(0u64), 1u64..100],
        rho_pct in 10u64..130,
        which in 0u8..4,
        seed in 0u64..500,
    ) {
        let d = dist(which);
        let rate = d.rate_for_utilization(rho_pct as f64 / 100.0, workers);
        let quantum = if quantum_us == 0 { SimDur::MAX } else { SimDur::micros(quantum_us) };
        let r = run_shinjuku(
            ShinjukuConfig {
                workers,
                quantum,
                seed,
                ..ShinjukuConfig::default()
            },
            WorkloadSpec {
                source: ServiceSource::Phased(PhasedService::constant(d)),
                arrivals: RateSchedule::Constant(rate.max(1_000.0)),
                duration: SimDur::millis(8),
                warmup: SimDur::millis(1),
            },
        );
        prop_assert!(r.is_conserved(), "{r:?}");
        if quantum == SimDur::MAX {
            prop_assert_eq!(r.preemptions, 0);
        }
        if r.completions > 0 {
            prop_assert!(r.latency.p99() >= r.latency.median());
        }
    }

    /// Libinger conserves requests and its preemption count respects
    /// the kernel-timer floor (never more than ~work/floor preemptions
    /// per completed request on constant workloads).
    #[test]
    fn libinger_conserves_and_respects_floor(
        workers in 1usize..6,
        quantum_us in 1u64..80,
        seed in 0u64..500,
    ) {
        let work = SimDur::micros(300);
        let d = ServiceDist::Constant(work);
        let rate = d.rate_for_utilization(0.5, workers);
        let r = run_libinger(
            LibingerConfig {
                workers,
                quantum: SimDur::micros(quantum_us),
                seed,
            },
            WorkloadSpec {
                source: ServiceSource::Phased(PhasedService::constant(d)),
                arrivals: RateSchedule::Constant(rate.max(1_000.0)),
                duration: SimDur::millis(8),
                warmup: SimDur::ZERO,
            },
        );
        prop_assert!(r.is_conserved(), "{r:?}");
        if r.completions > 10 {
            // The effective quantum is bounded below by the kernel
            // timer floor (~55 us), so a 300 us job can be preempted
            // at most ~6 times no matter how small the nominal
            // quantum.
            let per_req = r.preemptions as f64 / r.completions as f64;
            prop_assert!(
                per_req < 7.0,
                "quantum {quantum_us}us: {per_req} preemptions/request exceeds the floor bound"
            );
        }
    }
}
