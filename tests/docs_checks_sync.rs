//! Keeps the numbers in `docs/CHECKS.md` honest.
//!
//! The doc quotes live quantities — the inline-suppression count, the
//! static-allowlist hit count, and the schedule counts of both model
//! checkers, full and reduced. Prose numbers rot the moment a scenario
//! or allowlist entry changes, so this test regenerates every quoted
//! number from the same `lp-check` library APIs the binary uses and
//! asserts the doc contains it verbatim. Change the checker, and this
//! test names the exact sentence to update.

use std::path::Path;

use lp_check::lifecycle;
use lp_check::lint::lint_workspace;
use lp_check::model::{self, Mode};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// The doc with runs of whitespace collapsed to single spaces, so
/// needles are immune to prose re-wrapping.
fn checks_md_normalized() -> String {
    let raw =
        std::fs::read_to_string(root().join("docs/CHECKS.md")).expect("read docs/CHECKS.md");
    raw.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// `12345` -> `"12,345"`, matching the doc's thousands style.
fn commas(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[track_caller]
fn assert_doc_contains(doc: &str, needle: &str, what: &str) {
    assert!(
        doc.contains(needle),
        "docs/CHECKS.md is stale: expected to find `{needle}` ({what}). \
         Regenerate the number from `lp-check` output and update the prose."
    );
}

#[test]
fn suppression_counts_match_live_lint() {
    let doc = checks_md_normalized();
    let report = lint_workspace(root()).expect("lint run");

    // The doc claims the workspace carries no inline suppressions.
    // If one is ever added, the claim (not just a number) must change.
    assert_eq!(
        report.inline_suppressed_count(),
        0,
        "the workspace now carries inline `lp-check: allow` suppressions — \
         rewrite the `zero inline suppressions` claim in docs/CHECKS.md"
    );
    assert_doc_contains(&doc, "zero inline suppressions", "inline-suppression claim");

    // Every suppression is a static-allowlist hit, and the doc quotes
    // how many.
    let forced = report.suppressed_count() - report.inline_suppressed_count();
    assert_doc_contains(
        &doc,
        &format!("{} static-allowlist hits", commas(forced as u64)),
        "static-allowlist hit count",
    );
}

#[test]
fn upid_schedule_counts_match_live_model() {
    let doc = checks_md_normalized();
    let full = model::check_default(Mode::Full);
    let por = model::check_default(Mode::Por);
    assert!(full.holds() && por.holds());

    assert_doc_contains(
        &doc,
        &format!("**{} schedules**", commas(full.total_schedules())),
        "full UPID exploration schedule count",
    );
    assert_doc_contains(
        &doc,
        &format!("**{} schedules**", commas(por.total_schedules())),
        "PoR UPID exploration schedule count",
    );
    let ratio = full.total_schedules() as f64 / por.total_schedules() as f64;
    assert_doc_contains(
        &doc,
        &format!("~{:.0}× fewer", ratio),
        "UPID PoR reduction ratio",
    );
}

#[test]
fn lifecycle_schedule_counts_match_live_dpor() {
    let doc = checks_md_normalized();
    let naive = lifecycle::check_default(Mode::Full);
    let dpor = lifecycle::check_default(Mode::Por);
    assert!(naive.holds() && dpor.holds());

    assert_doc_contains(
        &doc,
        &format!("**{} schedules**", commas(naive.total_schedules())),
        "naive lifecycle schedule total",
    );
    assert_doc_contains(
        &doc,
        &format!("**{} schedules**", commas(dpor.total_schedules())),
        "DPOR lifecycle schedule total",
    );

    // The flagship scenario's before/after and reduction factor.
    let flag_naive = naive
        .scenarios
        .iter()
        .find(|s| s.name == "degrade-recover-2w")
        .expect("flagship scenario in naive run");
    let flag_dpor = dpor
        .scenarios
        .iter()
        .find(|s| s.name == "degrade-recover-2w")
        .expect("flagship scenario in DPOR run");
    assert_doc_contains(
        &doc,
        &format!("**{}** naive schedules", commas(flag_naive.dpor_schedules)),
        "flagship naive schedule count",
    );
    assert_doc_contains(
        &doc,
        &format!("to **{}**", commas(flag_dpor.dpor_schedules)),
        "flagship DPOR schedule count",
    );
    let reduction = flag_naive.dpor_schedules as f64 / flag_dpor.dpor_schedules as f64;
    assert_doc_contains(
        &doc,
        &format!("**{}×** reduction", commas(reduction.round() as u64)),
        "flagship reduction factor",
    );

    // Every shipped scenario is named in the doc.
    for s in &naive.scenarios {
        assert_doc_contains(&doc, &format!("`{}`", s.name), "lifecycle scenario name");
    }
}
