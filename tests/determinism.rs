//! Tier-1 gate: the parallel experiment runner is *byte-deterministic*.
//!
//! The contract (docs/PERFORMANCE.md): for any job count, every
//! artifact produces exactly the same result vectors and exactly the
//! same CSV bytes as the serial run. These tests pin that for the
//! quick-scale Fig. 2 grid and the full Fig. 8 grid (sweep +
//! max-throughput reduction — the one with a nontrivial serial
//! reduction over parallel measurements) across `LP_JOBS` ∈ {1, 2, 8}.
//!
//! `runner::with_jobs` pins the job count per call, so these tests are
//! independent of the environment and of each other.

use lp_experiments::runner::with_jobs;
use lp_experiments::{fig2, fig8, Scale};

const SEED: u64 = 2024;

#[test]
fn fig2_grid_is_byte_identical_across_job_counts() {
    let serial = with_jobs(1, || fig2::run_fig2(Scale::Quick, SEED));
    let serial_csv = fig2::table(&serial).to_csv();
    for jobs in [2, 8] {
        let par = with_jobs(jobs, || fig2::run_fig2(Scale::Quick, SEED));
        assert_eq!(serial, par, "fig2 points diverged at LP_JOBS={jobs}");
        assert_eq!(
            serial_csv,
            fig2::table(&par).to_csv(),
            "fig2 CSV bytes diverged at LP_JOBS={jobs}"
        );
    }
}

#[test]
fn fig8_sweep_is_byte_identical_across_job_counts() {
    let serial = with_jobs(1, || fig8::run_fig8(Scale::Quick, SEED));
    let serial_csv = fig8::sweep_table(&serial).to_csv();
    for jobs in [2, 8] {
        let par = with_jobs(jobs, || fig8::run_fig8(Scale::Quick, SEED));
        assert_eq!(serial, par, "fig8 sweep diverged at LP_JOBS={jobs}");
        assert_eq!(
            serial_csv,
            fig8::sweep_table(&par).to_csv(),
            "fig8 sweep CSV bytes diverged at LP_JOBS={jobs}"
        );
    }
}

#[test]
fn fig8_max_throughput_reduction_is_byte_identical_across_job_counts() {
    // The max-throughput path parallelizes the measurements but reduces
    // the saturation criterion serially — the reduction must see the
    // reports in exactly the submission order.
    let serial = with_jobs(1, || fig8::run_max_throughput(Scale::Quick, SEED));
    let serial_csv = fig8::max_table(&serial).to_csv();
    for jobs in [2, 8] {
        let par = with_jobs(jobs, || fig8::run_max_throughput(Scale::Quick, SEED));
        assert_eq!(serial, par, "fig8 max-throughput diverged at LP_JOBS={jobs}");
        assert_eq!(
            serial_csv,
            fig8::max_table(&par).to_csv(),
            "fig8 max CSV bytes diverged at LP_JOBS={jobs}"
        );
    }
}
