//! Tier-1 gate for the `lp-check` static-analysis subsystem.
//!
//! Five properties must hold on every commit:
//!
//! 1. **The workspace lints clean.** `lp-check lint` finds zero
//!    unsuppressed violations of the determinism / observability /
//!    concurrency / unsafe-hygiene rules catalogued in `docs/CHECKS.md`.
//! 2. **The UINTR protocol model-checks.** Exhaustively exploring every
//!    interleaving of the bundled 2-sender/1-receiver scenarios (≥1,000
//!    schedules) upholds all protocol invariants.
//! 3. **The watchdog lifecycle model-checks under DPOR**, and the
//!    sleep-set reduction earns ≥10× on the flagship scenario at
//!    verified-equal terminal coverage.
//! 4. **The figure traces are race-free.** `lp-check race` reports zero
//!    findings over both shipped trace recipes — and still catches a
//!    deliberately seeded causality-free delivery in the same trace.
//! 5. **The `all --json` schema is pinned** against a golden key-path
//!    list (version 2).
//!
//! Running these as a `cargo test` target (not only as a CI job) means
//! `cargo test` locally reproduces exactly what CI enforces.

use std::path::Path;

use lp_check::lint::lint_workspace;
use lp_check::model::{check_default, Mode};
use lp_check::{lifecycle, race};
use lp_experiments::{traces, Scale, DEFAULT_SEED};

/// The workspace root is the directory containing this test's manifest.
fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_lints_clean() {
    let report = lint_workspace(root()).expect("lint run");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "lp-check lint found {} violation(s):\n{}",
        report.violation_count(),
        report.human()
    );
}

#[test]
fn uintr_protocol_model_checks() {
    let report = check_default(Mode::Full);
    assert!(
        report.total_schedules() >= 1000,
        "only {} schedules explored — scenario suite shrank below the \
         1,000-schedule floor",
        report.total_schedules()
    );
    assert!(
        report.holds(),
        "UINTR protocol invariant violated:\n{}",
        report.human()
    );
}

#[test]
fn partial_order_reduction_agrees_with_full_exploration() {
    let full = check_default(Mode::Full);
    let por = check_default(Mode::Por);
    assert!(full.holds() && por.holds());
    assert!(
        por.total_schedules() < full.total_schedules(),
        "PoR explored {} schedules vs {} full — reduction not reducing",
        por.total_schedules(),
        full.total_schedules()
    );
}

#[test]
fn lifecycle_dpor_reduces_at_least_10x_at_equal_coverage() {
    // `Mode::Por` runs sleep-set DPOR and, for scenarios flagged
    // `compare_naive`, re-runs naive exploration and records any
    // terminal-coverage mismatch as a violation — so `holds()` already
    // vouches for coverage equality, not just invariant safety.
    let report = lifecycle::check_default(Mode::Por);
    assert!(
        report.holds(),
        "lifecycle invariant or DPOR-coverage violation:\n{}",
        report.human()
    );
    let flagship = report
        .scenarios
        .iter()
        .find(|s| s.name == "degrade-recover-2w")
        .expect("flagship scenario present");
    let reduction = flagship
        .reduction()
        .expect("flagship runs the naive cross-check");
    assert!(
        reduction >= 10.0,
        "DPOR reduction on degrade-recover-2w fell to {reduction:.1}x \
         (naive {:?} -> {} schedules) — below the 10x floor",
        flagship.naive_schedules,
        flagship.dpor_schedules
    );
}

/// Both shipped figure-trace recipes, quick scale — identical to what
/// `cargo run -p lp-experiments --bin traces` exports for CI.
fn figure_traces() -> [(&'static str, String); 2] {
    [
        ("fig2", traces::fig2_trace(Scale::Quick, DEFAULT_SEED)),
        ("figr", traces::figr_trace(Scale::Quick, DEFAULT_SEED)),
    ]
}

#[test]
fn race_detector_is_clean_on_figure_traces() {
    for (name, jsonl) in figure_traces() {
        let report = race::analyze_jsonl(&jsonl);
        assert_eq!(
            report.skipped, 0,
            "{name}: race analyzer skipped {} trace line(s) it could not parse",
            report.skipped
        );
        assert!(
            report.events > 1000 && report.edges > 100,
            "{name}: suspiciously small graph ({} events, {} edges) — \
             did the trace recipe or edge builder regress?",
            report.events,
            report.edges
        );
        assert!(
            report.is_clean(),
            "{name}: lp-check race found {} finding(s):\n{}",
            report.findings.len(),
            report.human()
        );
    }
}

#[test]
fn race_detector_catches_seeded_uncaused_delivery() {
    // The mutant: a `preempt_landed` appended to the real Fig. R trace
    // with a sequence number no send ever issued — a delivery with no
    // happens-before path from any cause, the signature of a lost/
    // forged wakeup. The detector must flag exactly this worker.
    let clean = traces::figr_trace(Scale::Quick, DEFAULT_SEED);
    let last_t: u64 = clean
        .lines()
        .rev()
        .find_map(|l| {
            let rest = l.strip_prefix("{\"t\":")?;
            rest.split(',').next()?.parse().ok()
        })
        .expect("trace has timestamped events");
    let mutant = format!(
        "{clean}{{\"t\":{},\"ev\":\"preempt_landed\",\"worker\":2,\"seq\":999983,\"uintr\":true}}\n",
        last_t + 1
    );
    let report = race::analyze_jsonl(&mutant);
    assert!(
        !report.is_clean(),
        "seeded causality-free delivery went undetected"
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.kind.name() == "uncaused-delivery" && f.worker == 2),
        "expected an uncaused-delivery finding for worker 2, got:\n{}",
        report.human()
    );
}

/// Every `"key"` in a JSON document as a dotted path (array elements
/// collapse to `[]`), relying only on syntax — no external parser.
/// Good enough for JSON we generate ourselves with stable key order.
fn json_key_paths(json: &str) -> std::collections::BTreeSet<String> {
    let mut paths = std::collections::BTreeSet::new();
    // Stack of (container char, segment that named it).
    let mut stack: Vec<(char, String)> = Vec::new();
    let mut pending_key: Option<String> = None;
    let mut chars = json.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let mut s = String::new();
                while let Some(&n) = chars.peek() {
                    chars.next();
                    if n == '\\' {
                        chars.next();
                    } else if n == '"' {
                        break;
                    } else {
                        s.push(n);
                    }
                }
                while chars.peek().is_some_and(|n| n.is_whitespace()) {
                    chars.next();
                }
                if chars.peek() == Some(&':') {
                    chars.next();
                    let mut path: Vec<&str> =
                        stack.iter().map(|(_, seg)| seg.as_str()).collect();
                    path.push(&s);
                    paths.insert(path.join("."));
                    pending_key = Some(s);
                } else {
                    // A string *value* — its key has been spent.
                    pending_key = None;
                }
            }
            '{' | '[' => {
                let seg = match pending_key.take() {
                    Some(k) => k,
                    None => match stack.last() {
                        Some(('[', _)) => "[]".to_string(),
                        _ => String::new(),
                    },
                };
                stack.push((c, seg));
            }
            '}' | ']' => {
                stack.pop();
                pending_key = None;
            }
            ',' => pending_key = None,
            _ => {}
        }
    }
    // Root containers contribute empty segments; strip them.
    paths
        .into_iter()
        .map(|p| {
            p.split('.')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join(".")
        })
        .collect()
}

#[test]
fn all_json_schema_matches_golden() {
    let lint = lint_workspace(root()).expect("lint run");
    let upid = check_default(Mode::Full);
    let lc = lifecycle::check_default(Mode::Full);
    let json = lp_check::all_json(&lint, &upid, &lc);

    assert!(
        json.starts_with(&format!("{{\"version\":{}", lp_check::JSON_SCHEMA_VERSION)),
        "all --json must lead with the schema version"
    );

    let actual = json_key_paths(&json)
        .into_iter()
        .collect::<Vec<_>>()
        .join("\n");
    let golden_path = root().join("tests/golden/lp_check_all_json_keys.txt");
    if std::env::var_os("LP_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, format!("{actual}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("read tests/golden/lp_check_all_json_keys.txt (run with LP_UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        actual,
        golden.trim_end(),
        "`lp-check all --json` key paths drifted from the golden file. \
         If the change is intentional, bump JSON_SCHEMA_VERSION in \
         crates/check/src/lib.rs and re-run with LP_UPDATE_GOLDEN=1."
    );
}
