//! Tier-1 gate for the `lp-check` static-analysis subsystem.
//!
//! Two properties must hold on every commit:
//!
//! 1. **The workspace lints clean.** `lp-check lint` finds zero
//!    unsuppressed violations of the determinism / observability /
//!    unsafe-hygiene rules catalogued in `docs/CHECKS.md`.
//! 2. **The UINTR protocol model-checks.** Exhaustively exploring every
//!    interleaving of the bundled 2-sender/1-receiver scenarios (≥1,000
//!    schedules) upholds all protocol invariants.
//!
//! Running these as a `cargo test` target (not only as a CI job) means
//! `cargo test` locally reproduces exactly what CI enforces.

use std::path::Path;

use lp_check::lint::lint_workspace;
use lp_check::model::{check_default, Mode};

/// The workspace root is the directory containing this test's manifest.
fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_lints_clean() {
    let report = lint_workspace(root()).expect("lint run");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "lp-check lint found {} violation(s):\n{}",
        report.violation_count(),
        report.human()
    );
}

#[test]
fn uintr_protocol_model_checks() {
    let report = check_default(Mode::Full);
    assert!(
        report.total_schedules() >= 1000,
        "only {} schedules explored — scenario suite shrank below the \
         1,000-schedule floor",
        report.total_schedules()
    );
    assert!(
        report.holds(),
        "UINTR protocol invariant violated:\n{}",
        report.human()
    );
}

#[test]
fn partial_order_reduction_agrees_with_full_exploration() {
    let full = check_default(Mode::Full);
    let por = check_default(Mode::Por);
    assert!(full.holds() && por.holds());
    assert!(
        por.total_schedules() < full.total_schedules(),
        "PoR explored {} schedules vs {} full — reduction not reducing",
        por.total_schedules(),
        full.total_schedules()
    );
}
